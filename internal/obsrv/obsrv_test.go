package obsrv

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestDisabledObserverIsNil(t *testing.T) {
	o := New(Config{})
	if o != nil {
		t.Fatalf("disabled config should yield nil Observer")
	}
	// Every downstream call must be a no-op, not a panic.
	r := o.Begin("run")
	if r != nil {
		t.Fatalf("nil observer returned non-nil Req")
	}
	s := r.StartSpan("resolve")
	s.End()
	r.SetField("k", 1)
	r.SetHandle("h")
	o.End(r, Outcome{Status: 200})
	if o.TraceCapacity() != 0 {
		t.Fatalf("nil observer TraceCapacity = %d, want 0", o.TraceCapacity())
	}
	if err := o.WriteMetrics(os.Stderr); err != nil {
		t.Fatalf("nil WriteMetrics: %v", err)
	}
}

func TestSpanTreeStructure(t *testing.T) {
	o := New(Config{Enabled: true})
	r := o.Begin("run")
	if !strings.HasPrefix(r.ID, "r-") {
		t.Fatalf("request id %q lacks r- prefix", r.ID)
	}
	a := r.StartSpan("admission-wait")
	a.End()
	ex := r.StartSpan("execute")
	inner := r.StartSpan("inner")
	inner.End()
	ex.End()
	o.End(r, Outcome{Status: 200})

	if got := len(r.root.Children); got != 2 {
		t.Fatalf("root children = %d, want 2", got)
	}
	if r.root.Children[1].Name != "execute" || len(r.root.Children[1].Children) != 1 {
		t.Fatalf("execute span lost its child: %+v", r.root.Children[1])
	}
	for _, s := range []*Span{r.root, a, ex, inner} {
		if s.DurNS < 0 {
			t.Fatalf("span %q left open (dur %d)", s.Name, s.DurNS)
		}
	}
}

func TestCloseAllEndsAbandonedSpans(t *testing.T) {
	o := New(Config{Enabled: true})
	r := o.Begin("run")
	r.StartSpan("resolve") // never ended: error path bails mid-phase
	o.End(r, Outcome{Status: 400})
	if r.root.Children[0].DurNS < 0 {
		t.Fatalf("End did not close abandoned span")
	}
}

func TestSpanJSONLExport(t *testing.T) {
	o := New(Config{Enabled: true})
	r := o.Begin("run")
	r.StartSpan("execute").End()
	o.End(r, Outcome{Status: 200})
	var buf bytes.Buffer
	if err := r.WriteSpanJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	for _, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line not JSON: %q: %v", ln, err)
		}
		if rec["req"] != r.ID {
			t.Fatalf("line missing request id: %q", ln)
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	o := New(Config{Enabled: true})
	for i := 0; i < 3; i++ {
		r := o.Begin("run")
		r.StartSpan("execute").End()
		o.End(r, Outcome{Status: 200})
	}
	r := o.Begin("run")
	o.End(r, Outcome{Status: 503})
	// An off-list status code must fall back to a dynamically registered
	// series rather than vanish.
	r = o.Begin("run")
	o.End(r, Outcome{Status: 418})

	var buf bytes.Buffer
	if err := o.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if _, err := ValidatePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, out)
	}
	for _, want := range []string{
		`sharc_requests_total{code="200",endpoint="run"} 3`,
		`sharc_requests_total{code="503",endpoint="run"} 1`,
		`sharc_requests_total{code="418",endpoint="run"} 1`,
		`sharc_admission_refused_total 1`,
		`sharc_phase_duration_seconds_count{phase="execute"} 3`,
		"sharc_build_info",
		"sharc_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestValidatePrometheusRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		[]byte("not a metric line at all!\n"),
		[]byte("# neither HELP nor TYPE\n"),
		[]byte(`metric{unquoted=value} 1` + "\n"),
		[]byte("metric 1\nmetric notanumber\n"),
		[]byte(""),
	}
	for _, b := range bad {
		if _, err := ValidatePrometheus(b); err == nil {
			t.Errorf("ValidatePrometheus accepted %q", b)
		}
	}
	good := []byte("# HELP m help\n# TYPE m counter\nm{a=\"b,c\"} 1\nm2 +Inf\n")
	if n, err := ValidatePrometheus(good); err != nil || n != 2 {
		t.Errorf("ValidatePrometheus(good) = %d, %v", n, err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram()
	h.Observe(5 * time.Microsecond)  // below first bound -> bucket 0
	h.Observe(15 * time.Microsecond) // (10µs, 20µs] -> bucket 1
	h.Observe(100 * time.Second)     // beyond all bounds -> +Inf slot
	if got := h.buckets[0].Load(); got != 1 {
		t.Errorf("bucket[0] = %d, want 1", got)
	}
	if got := h.buckets[1].Load(); got != 1 {
		t.Errorf("bucket[1] = %d, want 1", got)
	}
	if got := h.buckets[len(histBounds)].Load(); got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
}

func TestLoggerLevelsAndFieldOrder(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Log(LevelDebug, "dropped")
	l.Log(LevelInfo, "kept", Field{"a", 1}, Field{"b", "x"})
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("debug record leaked at info level: %q", out)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &rec); err != nil {
		t.Fatalf("record not JSON: %q: %v", out, err)
	}
	if rec["event"] != "kept" || rec["a"] != float64(1) || rec["b"] != "x" {
		t.Fatalf("record fields wrong: %v", rec)
	}
	ia := strings.Index(out, `"a"`)
	ib := strings.Index(out, `"b"`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("field order not preserved: %q", out)
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"off": LevelOff, "error": LevelError, "info": LevelInfo, "debug": LevelDebug,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("chatty"); err == nil {
		t.Errorf("ParseLevel accepted garbage")
	}
}

func captureObserver(t *testing.T, cfg Config) (*Observer, string) {
	t.Helper()
	dir := t.TempDir()
	cfg.Enabled = true
	cfg.CaptureDir = dir
	return New(cfg), dir
}

func TestSlowCaptureFixedThreshold(t *testing.T) {
	o, dir := captureObserver(t, Config{SlowThreshold: time.Nanosecond})
	tr := telemetry.NewTracer(16, nil)
	tr.Append(telemetry.KindChkRead, 0, -1, 42, 0)
	r := o.Begin("run")
	r.SetHandle("sha-test")
	for _, ph := range PhaseNames {
		r.StartSpan(ph).End()
	}
	time.Sleep(time.Millisecond)
	o.End(r, Outcome{Status: 200, Tracer: tr, Decisions: 7})

	path := filepath.Join(dir, r.ID+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("capture file missing: %v", err)
	}
	var cf captureFile
	if err := json.Unmarshal(b, &cf); err != nil {
		t.Fatalf("capture not JSON: %v", err)
	}
	if len(cf.Phases) != len(PhaseNames) {
		t.Fatalf("capture has %d phases, want %d", len(cf.Phases), len(PhaseNames))
	}
	for i, ph := range PhaseNames {
		if cf.Phases[i].Name != ph {
			t.Errorf("phase %d = %q, want %q", i, cf.Phases[i].Name, ph)
		}
	}
	if cf.Decisions != 7 || cf.Handle != "sha-test" {
		t.Errorf("capture metadata wrong: %+v", cf)
	}
	if cf.Trace == nil || len(cf.Trace.Events) != 1 {
		t.Fatalf("capture lost the tracer ring: %+v", cf.Trace)
	}
	// The embedded events must be the PR-3 JSONL schema verbatim.
	var ev map[string]any
	if err := json.Unmarshal(cf.Trace.Events[0], &ev); err != nil {
		t.Fatal(err)
	}
	if ev["kind"] != "chkread" || ev["addr"] != float64(42) {
		t.Errorf("embedded event not in tracer schema: %v", ev)
	}

	cb, err := os.ReadFile(filepath.Join(dir, r.ID+".chrome.json"))
	if err != nil {
		t.Fatalf("chrome capture missing: %v", err)
	}
	var chrome []map[string]any
	if err := json.Unmarshal(cb, &chrome); err != nil {
		t.Fatalf("chrome capture not JSON: %v", err)
	}
	slices, instants := 0, 0
	for _, e := range chrome {
		switch e["ph"] {
		case "X":
			slices++
		case "i":
			instants++
		}
	}
	if slices != len(PhaseNames)+1 || instants != 1 {
		t.Errorf("chrome capture has %d slices / %d instants, want %d / 1",
			slices, instants, len(PhaseNames)+1)
	}
}

func TestFastRequestNotCaptured(t *testing.T) {
	o, dir := captureObserver(t, Config{SlowThreshold: time.Hour})
	r := o.Begin("run")
	o.End(r, Outcome{Status: 200})
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("fast request produced %d capture files", len(ents))
	}
}

func TestCaptureDirBounded(t *testing.T) {
	o, dir := captureObserver(t, Config{SlowThreshold: time.Nanosecond, CaptureMax: 2})
	for i := 0; i < 5; i++ {
		r := o.Begin("run")
		time.Sleep(time.Millisecond)
		o.End(r, Outcome{Status: 200})
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) > 4 { // 2 captures x (json + chrome.json)
		t.Fatalf("capture dir holds %d files, want <= 4", len(ents))
	}
}

func TestQuantileThresholdWarmsUp(t *testing.T) {
	o, dir := captureObserver(t, Config{
		SlowQuantile: 0.9, SlowWindow: 8, SlowMin: time.Nanosecond,
	})
	// Cold window: nothing may fire regardless of latency.
	r := o.Begin("run")
	time.Sleep(2 * time.Millisecond)
	o.End(r, Outcome{Status: 200})
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("capture fired on a cold window")
	}
	// Warm the window with fast requests, then one outlier must fire.
	for i := 0; i < 8; i++ {
		o.End(o.Begin("run"), Outcome{Status: 200})
	}
	r = o.Begin("run")
	time.Sleep(5 * time.Millisecond)
	o.End(r, Outcome{Status: 200})
	if ents, _ := os.ReadDir(dir); len(ents) == 0 {
		t.Fatalf("outlier not captured after warm-up")
	}
}

func TestAccessLogRecords(t *testing.T) {
	var buf bytes.Buffer
	o := New(Config{Enabled: true, AccessLog: &buf, LogLevel: LevelInfo})
	r := o.Begin("run")
	r.SetHandle("h-1")
	r.SetField("cache", "hit")
	o.End(r, Outcome{Status: 200})
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &rec); err != nil {
		t.Fatalf("access log line not JSON: %q: %v", buf.String(), err)
	}
	for k, want := range map[string]any{
		"event": "request", "req": r.ID, "endpoint": "run",
		"status": float64(200), "handle": "h-1", "cache": "hit",
	} {
		if rec[k] != want {
			t.Errorf("access log %s = %v, want %v", k, rec[k], want)
		}
	}
	if _, ok := rec["latency_ns"]; !ok {
		t.Errorf("access log missing latency_ns: %v", rec)
	}
}

func TestRequestIDsUnique(t *testing.T) {
	o := New(Config{Enabled: true})
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		r := o.Begin("run")
		if seen[r.ID] {
			t.Fatalf("duplicate request id %q", r.ID)
		}
		seen[r.ID] = true
		o.End(r, Outcome{Status: 200})
	}
}

func TestContextRoundTrip(t *testing.T) {
	o := New(Config{Enabled: true})
	r := o.Begin("run")
	ctx := NewContext(t.Context(), r)
	if got := FromContext(ctx); got != r {
		t.Fatalf("FromContext = %v, want %v", got, r)
	}
	if got := FromContext(t.Context()); got != nil {
		t.Fatalf("FromContext on bare ctx = %v, want nil", got)
	}
	if ctx := NewContext(t.Context(), nil); FromContext(ctx) != nil {
		t.Fatalf("nil Req should not be stored")
	}
}

// BenchmarkDisabledPath pins the observability-off cost: a nil Observer
// walked through the full per-request call sequence must stay in the
// single-nanosecond range, mirroring PR 3's disabled-telemetry bar.
func BenchmarkDisabledPath(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := o.Begin("run")
		s := r.StartSpan("execute")
		s.End()
		o.End(r, Outcome{Status: 200})
	}
}
