// Package obsrv is the request-scoped observability layer for sharc
// serve. It complements the program-level telemetry spine (PR 3,
// internal/telemetry) one level up: where the Tracer records what a
// checked program did, obsrv records what the service did to each
// request — a span tree over the five request phases (admission-wait,
// resolve, schedule, execute, telemetry-merge), Prometheus-text metrics,
// structured JSONL access logs keyed by stable request IDs, and
// automatic capture of slow outliers that bundles the span tree with the
// program-level Tracer ring into one Chrome-openable trace.
//
// The whole package is nil-safe by construction: a nil *Observer hands
// out nil *Req and nil *Span values whose methods are no-ops, so the
// disabled path costs a few nil comparisons (BenchmarkDisabledPath) and
// serve code needs no "if enabled" branches. Observability never changes
// reply bytes — only headers and side channels — which the serve tests
// pin with an obs-on/obs-off equivalence test.
package obsrv

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Config controls one Observer. The zero value means disabled.
type Config struct {
	// Enabled turns the layer on. When false, New returns nil and every
	// downstream call is a no-op.
	Enabled bool

	// SlowThreshold captures any request slower than this. Zero disables
	// the fixed threshold.
	SlowThreshold time.Duration

	// SlowQuantile (0 < q < 1) captures requests slower than the given
	// quantile of a trailing latency window. Zero disables.
	SlowQuantile float64
	// SlowWindow is the trailing-window size for SlowQuantile (default 256).
	SlowWindow int
	// SlowMin floors the quantile threshold so cold windows don't capture
	// everything (default 1ms).
	SlowMin time.Duration

	// CaptureDir is where slow-request captures land; empty disables
	// capture even when a threshold is set.
	CaptureDir string
	// CaptureMax bounds the number of capture files kept (default 32);
	// oldest are pruned.
	CaptureMax int

	// AccessLog receives one JSONL record per request when non-nil and
	// LogLevel admits it.
	AccessLog io.Writer
	// LogLevel gates access-log records (default LevelInfo).
	LogLevel Level

	// TraceCapacity is the per-request program-event ring size handed to
	// the interpreter when capture is armed (default
	// telemetry.DefaultTraceCapacity). Zero keeps the default; capture
	// disarmed means no ring is requested at all.
	TraceCapacity int
}

// Observer is the service-wide observability root: metric registry,
// access logger, slow-request capturer, and the request-ID sequence.
type Observer struct {
	cfg Config
	reg *Registry
	log *Logger
	cap *Capturer
	seq atomic.Int64

	start time.Time

	// Pre-registered hot-path series so a request touches no maps.
	reqTotal map[string]*Counter   // endpoint|code
	reqDur   map[string]*Histogram // endpoint
	phaseDur map[string]*Histogram // phase
	refused  *Counter
	timedOut *Counter
	captures *Counter
}

// Endpoints and codes covered by pre-registered counters; anything else
// falls back to the registry's locked lookup (rare codes only).
var (
	hotEndpoints = []string{"run", "compile", "stats", "metrics", "healthz", "readyz"}
	hotCodes     = []string{"200", "400", "404", "405", "500", "503", "504"}
)

// PhaseNames are the five request phases, in order. The slow-request
// capture acceptance check asserts all five appear in a capture.
var PhaseNames = []string{
	"admission-wait", "resolve", "schedule", "execute", "telemetry-merge",
}

// New builds an Observer, or nil when cfg.Enabled is false (the nil
// Observer is fully usable — all methods no-op).
func New(cfg Config) *Observer {
	if !cfg.Enabled {
		return nil
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = 256
	}
	if cfg.SlowMin <= 0 {
		cfg.SlowMin = time.Millisecond
	}
	if cfg.CaptureMax <= 0 {
		cfg.CaptureMax = 32
	}
	if cfg.TraceCapacity <= 0 {
		cfg.TraceCapacity = telemetry.DefaultTraceCapacity
	}
	o := &Observer{
		cfg:      cfg,
		reg:      NewRegistry(),
		start:    time.Now(),
		reqTotal: make(map[string]*Counter),
		reqDur:   make(map[string]*Histogram),
		phaseDur: make(map[string]*Histogram),
	}
	if cfg.AccessLog != nil && cfg.LogLevel > LevelOff {
		o.log = NewLogger(cfg.AccessLog, cfg.LogLevel)
	}
	if cfg.CaptureDir != "" && (cfg.SlowThreshold > 0 || cfg.SlowQuantile > 0) {
		o.cap = newCapturer(cfg)
	}
	for _, ep := range hotEndpoints {
		for _, code := range hotCodes {
			o.reqTotal[ep+"|"+code] = o.reg.Counter("sharc_requests_total",
				"Requests served, by endpoint and status code.",
				"endpoint", ep, "code", code)
		}
		o.reqDur[ep] = o.reg.Histogram("sharc_request_duration_seconds",
			"End-to-end request latency.", "endpoint", ep)
	}
	for _, ph := range PhaseNames {
		o.phaseDur[ph] = o.reg.Histogram("sharc_phase_duration_seconds",
			"Per-phase request latency.", "phase", ph)
	}
	o.refused = o.reg.Counter("sharc_admission_refused_total",
		"Requests refused with 503 at admission.")
	o.timedOut = o.reg.Counter("sharc_request_timeouts_total",
		"Requests that hit their deadline and returned 504.")
	o.captures = o.reg.Counter("sharc_slow_captures_total",
		"Slow-request captures written.")
	o.reg.Gauge("sharc_uptime_seconds", "Seconds since server start.",
		func() float64 { return time.Since(o.start).Seconds() })
	o.reg.Counter("sharc_build_info",
		"Build metadata (constant 1).",
		"go_version", runtime.Version()).Add(1)
	return o
}

// Registry exposes the metric registry for extra gauges (serve wires
// in-flight, queue-depth, and cache gauges). Nil-safe.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// TraceCapacity is the program-event ring size to request from the
// interpreter when a capture could fire; 0 means capture is disarmed and
// no ring is needed. Nil-safe.
func (o *Observer) TraceCapacity() int {
	if o == nil || o.cap == nil {
		return 0
	}
	return o.cfg.TraceCapacity
}

// Req is one observed request: identity, span tree, and the fields that
// end up in the access log and capture.
type Req struct {
	ID       string
	Endpoint string

	start time.Time
	root  *Span
	cur   *Span
	obs   *Observer

	// Handle is the program cache handle, set once resolved.
	Handle string
	// fields are extra access-log key/values.
	fields []Field
}

// Field is one access-log key/value.
type Field struct {
	Key string
	Val any
}

// Begin opens an observed request for an endpoint. Nil-safe: a nil
// Observer returns a nil Req.
func (o *Observer) Begin(endpoint string) *Req {
	if o == nil {
		return nil
	}
	r := &Req{
		ID:       fmt.Sprintf("r-%06d", o.seq.Add(1)),
		Endpoint: endpoint,
		start:    time.Now(),
		obs:      o,
	}
	r.root = &Span{Name: endpoint, StartNS: 0, DurNS: -1, req: r}
	r.cur = r.root
	return r
}

// SetField attaches a key/value to the request's access-log record.
func (r *Req) SetField(key string, val any) {
	if r == nil {
		return
	}
	r.fields = append(r.fields, Field{key, val})
}

// SetHandle records the resolved program handle.
func (r *Req) SetHandle(h string) {
	if r == nil {
		return
	}
	r.Handle = h
}

// Outcome carries the request's terminal state into End.
type Outcome struct {
	Status int
	// Tracer is the program-level event ring from the run, when one was
	// requested; bundled into a slow capture.
	Tracer *telemetry.Tracer
	// Decisions is the scheduler decision count from the run (-1 when
	// free-running or not applicable).
	Decisions int64
	// Err is a short error string for the access log ("" on success).
	Err string
}

// End finishes the request: closes open spans, bumps metrics, writes the
// access log record, and fires a slow capture if the latency crosses the
// threshold. Nil-safe on both receiver and request.
func (o *Observer) End(r *Req, out Outcome) {
	if o == nil || r == nil {
		return
	}
	r.closeAll()
	lat := time.Duration(r.root.DurNS)

	code := fmt.Sprintf("%d", out.Status)
	if c, ok := o.reqTotal[r.Endpoint+"|"+code]; ok {
		c.Inc()
	} else {
		o.reg.Counter("sharc_requests_total",
			"Requests served, by endpoint and status code.",
			"endpoint", r.Endpoint, "code", code).Inc()
	}
	if h, ok := o.reqDur[r.Endpoint]; ok {
		h.Observe(lat)
	}
	for _, c := range r.root.Children {
		if h, ok := o.phaseDur[c.Name]; ok {
			h.Observe(time.Duration(c.DurNS))
		}
	}
	switch out.Status {
	case 503:
		o.refused.Inc()
	case 504:
		o.timedOut.Inc()
	}

	captured := ""
	if o.cap != nil {
		if path := o.cap.maybeCapture(r, lat, out); path != "" {
			o.captures.Inc()
			captured = path
		}
	}

	if o.log != nil {
		lvl := LevelInfo
		if out.Status >= 500 {
			lvl = LevelError
		}
		fields := []Field{
			{"req", r.ID},
			{"endpoint", r.Endpoint},
			{"status", out.Status},
			{"latency_ns", int64(lat)},
		}
		if r.Handle != "" {
			fields = append(fields, Field{"handle", r.Handle})
		}
		if out.Err != "" {
			fields = append(fields, Field{"error", out.Err})
		}
		if captured != "" {
			fields = append(fields, Field{"capture", captured})
		}
		fields = append(fields, r.fields...)
		o.log.Log(lvl, "request", fields...)
	}
}

// Debug writes a debug-level record to the access log (server lifecycle
// events: start, drain, shutdown). Nil-safe.
func (o *Observer) Debug(event string, fields ...Field) {
	if o == nil || o.log == nil {
		return
	}
	o.log.Log(LevelDebug, event, fields...)
}

// Info writes an info-level record to the access log. Nil-safe.
func (o *Observer) Info(event string, fields ...Field) {
	if o == nil || o.log == nil {
		return
	}
	o.log.Log(LevelInfo, event, fields...)
}

// WriteMetrics renders the registry as Prometheus text. Nil-safe (writes
// nothing on a nil Observer).
func (o *Observer) WriteMetrics(w io.Writer) error {
	if o == nil {
		return nil
	}
	return o.reg.WritePrometheus(w)
}

type ctxKey struct{}

// NewContext attaches a request to a context.
func NewContext(ctx context.Context, r *Req) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext recovers the request, or nil.
func FromContext(ctx context.Context) *Req {
	r, _ := ctx.Value(ctxKey{}).(*Req)
	return r
}
