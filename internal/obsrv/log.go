package obsrv

// Structured JSONL access logging. One record per line, fields in stable
// order (ts, level, event, then caller fields in the order given) so logs
// diff cleanly and downstream line parsers stay trivial. A single mutex
// serializes writes — the access log is not on the reply path, and
// interleaved half-lines would be worse than the contention.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level gates which records reach the log.
type Level int

const (
	LevelOff Level = iota
	LevelError
	LevelInfo
	LevelDebug
)

func (l Level) String() string {
	switch l {
	case LevelOff:
		return "off"
	case LevelError:
		return "error"
	case LevelInfo:
		return "info"
	case LevelDebug:
		return "debug"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel maps a flag string to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "off":
		return LevelOff, nil
	case "error":
		return LevelError, nil
	case "info":
		return LevelInfo, nil
	case "debug":
		return LevelDebug, nil
	}
	return LevelOff, fmt.Errorf("unknown log level %q (want off|error|info|debug)", s)
}

// Logger writes JSONL records at or below its level.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	lvl Level
}

// NewLogger wraps w at the given level.
func NewLogger(w io.Writer, lvl Level) *Logger {
	return &Logger{w: w, lvl: lvl}
}

// Log writes one record if lvl is admitted. Field order is preserved.
func (l *Logger) Log(lvl Level, event string, fields ...Field) {
	if l == nil || lvl > l.lvl || lvl == LevelOff {
		return
	}
	var b strings.Builder
	b.WriteString(`{"ts":`)
	b.WriteString(fmt.Sprintf("%q", time.Now().UTC().Format(time.RFC3339Nano)))
	b.WriteString(`,"level":`)
	b.WriteString(fmt.Sprintf("%q", lvl.String()))
	b.WriteString(`,"event":`)
	b.WriteString(fmt.Sprintf("%q", event))
	for _, f := range fields {
		b.WriteString(",")
		b.WriteString(fmt.Sprintf("%q", f.Key))
		b.WriteString(":")
		v, err := json.Marshal(f.Val)
		if err != nil {
			v = []byte(fmt.Sprintf("%q", fmt.Sprint(f.Val)))
		}
		b.Write(v)
	}
	b.WriteString("}\n")
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}
