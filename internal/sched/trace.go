package sched

import (
	"encoding/json"
	"fmt"
	"os"
)

// TraceVersion is the on-disk trace format version.
const TraceVersion = 1

// Step is one run of consecutive decisions for the same task key.
type Step struct {
	Key int   `json:"k"`
	N   int64 `json:"n"`
}

// Trace is a recorded schedule: the chosen-task sequence of every
// scheduling decision, run-length encoded. Replaying a trace against the
// same program reproduces the recorded execution exactly; replaying it
// against a differently instrumented build of the same program (e.g. with
// check elision enabled) holds the interleaving fixed so report content
// can be compared, which is the elision soundness oracle.
type Trace struct {
	Version   int    `json:"version"`
	Strategy  string `json:"strategy"`
	Seed      int64  `json:"seed"`
	Decisions int64  `json:"decisions"`
	Steps     []Step `json:"steps"`
}

// Marshal renders the trace as compact JSON.
func (t *Trace) Marshal() ([]byte, error) { return json.Marshal(t) }

// UnmarshalTrace parses a trace, validating the version.
func UnmarshalTrace(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if t.Version != TraceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", t.Version, TraceVersion)
	}
	return &t, nil
}

// WriteTraceFile saves the trace to path.
func WriteTraceFile(path string, t *Trace) error {
	data, err := t.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadTraceFile loads a trace from path.
func ReadTraceFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalTrace(data)
}
