// Package sched is a pluggable cooperative scheduling layer for the
// concurrent interpreter. When a Controller is installed, ShC threads stop
// free-running on the Go scheduler: exactly one thread holds the execution
// token at a time, and at every scheduling point (spawn, lock/unlock,
// cond wait/signal, join, checked memory access, sharing cast, thread
// exit) the running thread hands the token back and a Strategy picks the
// next runnable thread. Because the interpreter is deterministic between
// scheduling points, the sequence of chosen threads fully determines the
// execution: a (program, seed) pair reproduces the identical trace,
// reports, and exit code, and a recorded decision sequence can be replayed
// exactly — including across check-elision configurations, since the
// scheduling points are anchored to memory accesses and synchronization
// operations, which elision never removes.
//
// Blocking operations (mutex acquire, condition wait, join, thread-id
// starvation) are modeled inside the Controller rather than on real sync
// primitives, so the scheduler always knows the runnable set and can
// detect deadlocks: when every live thread is blocked, all of them are
// released with a failure status and the run aborts with deadlock reports
// instead of hanging.
package sched

import (
	"sync"
)

// Point classifies scheduling points, mostly for strategies and traces.
type Point int

const (
	PointStart Point = iota
	PointSpawn
	PointLock
	PointUnlock
	PointWait
	PointSignal
	PointJoin
	PointCheck // checked (non-stack) memory access
	PointScast
	PointExit
	PointYield // explicit yield / sleep
)

func (p Point) String() string {
	switch p {
	case PointStart:
		return "start"
	case PointSpawn:
		return "spawn"
	case PointLock:
		return "lock"
	case PointUnlock:
		return "unlock"
	case PointWait:
		return "wait"
	case PointSignal:
		return "signal"
	case PointJoin:
		return "join"
	case PointCheck:
		return "check"
	case PointScast:
		return "scast"
	case PointExit:
		return "exit"
	case PointYield:
		return "yield"
	}
	return "?"
}

type taskState int

const (
	stReady taskState = iota
	stRunning
	stBlocked
	stExited
)

type blockReason int

const (
	blkNone blockReason = iota
	blkLock             // waitAddr is the contended lock
	blkCond             // waitAddr is the condition variable
	blkJoin             // waitKey is the joined task
	blkExit             // waiting for any task to exit (thread-id starvation)
)

// task is one schedulable thread. Every non-running, non-exited task's
// goroutine is parked on its resume channel; state says whether the picker
// may hand it the token.
type task struct {
	key      int
	state    taskState
	reason   blockReason
	waitAddr int64
	waitKey  int
	resume   chan resumeMsg // buffered 1: the token can be deposited early
}

type resumeMsg struct {
	deadlock bool
}

// Options configures a Controller beyond its strategy.
type Options struct {
	// Record keeps the chosen-key decision sequence for Trace().
	Record bool
}

// Observer taps the controller's scheduling decisions and blocking edges
// (for telemetry tracing). Methods are invoked with the controller's lock
// held: implementations must be fast and must never call back into the
// Controller.
type Observer interface {
	// Decision reports that decision step picked task chosen at point p.
	Decision(step int64, chosen int, p Point)
	// Block reports that task key just blocked at point p.
	Block(key int, p Point)
}

// Controller serializes a set of tasks onto one execution token and makes
// every interleaving decision through its Strategy. All methods are safe
// for concurrent use, though by construction only the token holder calls
// the scheduling methods.
type Controller struct {
	mu        sync.Mutex
	strategy  Strategy
	tasks     []*task // index key-1; registration order
	lockOwner map[int64]int
	running   int
	deadlock  bool
	aborted   bool
	record    bool
	decisions []int
	nDec      int64
	obs       Observer
}

// New returns a Controller driving its tasks with the given strategy.
func New(s Strategy, o Options) *Controller {
	return &Controller{
		strategy:  s,
		lockOwner: make(map[int64]int),
		record:    o.Record,
	}
}

// Register adds a new task and returns its key (1, 2, ... in registration
// order). The first registered task starts as the token holder; later ones
// are runnable and start executing when first picked (see Begin). Keys are
// deterministic: registration happens in scheduled-thread order.
func (c *Controller) Register() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &task{
		key:    len(c.tasks) + 1,
		state:  stReady,
		resume: make(chan resumeMsg, 1),
	}
	c.tasks = append(c.tasks, t)
	if len(c.tasks) == 1 {
		t.state = stRunning
		c.running = t.key
		t.resume <- resumeMsg{} // initial token; drained by Begin
	}
	return t.key
}

func (c *Controller) task(key int) *task { return c.tasks[key-1] }

// Begin parks the calling task until it is first scheduled. Every task —
// including one handed the token before it started — consumes exactly one
// token from its resume channel here, so an early deposit is never left
// stale in the buffer.
func (c *Controller) Begin(key int) {
	c.mu.Lock()
	t := c.task(key)
	c.mu.Unlock()
	<-t.resume
}

// readyLocked returns the keys of all pickable tasks in ascending order.
func (c *Controller) readyLocked() []int {
	var ready []int
	for _, t := range c.tasks {
		if t.state == stReady || t.state == stRunning {
			ready = append(ready, t.key)
		}
	}
	return ready
}

// decideLocked runs one strategy decision over the ready set and records
// it. ready must be non-empty.
func (c *Controller) decideLocked(ready []int, cur int, p Point) int {
	choice := c.strategy.Pick(ready, cur, c.nDec, p)
	ok := false
	for _, k := range ready {
		if k == choice {
			ok = true
			break
		}
	}
	if !ok {
		choice = ready[0]
	}
	c.nDec++
	if c.record {
		c.decisions = append(c.decisions, choice)
	}
	if c.obs != nil {
		c.obs.Decision(c.nDec-1, choice, p)
	}
	return choice
}

// SetObserver installs (or clears) the decision observer. Install before
// the program starts; the observer sees every subsequent decision.
func (c *Controller) SetObserver(o Observer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obs = o
}

// yieldLocked is the heart of the token machine: the running task t gives
// up the token (blocking if blocked is set), the strategy picks the next
// task, and the call returns when t is picked again. It returns false when
// the scheduler declared deadlock, in which case t must unwind.
func (c *Controller) yieldLocked(t *task, p Point, blocked bool) bool {
	if c.deadlock || c.aborted {
		return false
	}
	if blocked {
		t.state = stBlocked
		if c.obs != nil {
			c.obs.Block(t.key, p)
		}
	} else {
		t.state = stReady
	}
	ready := c.readyLocked()
	if len(ready) == 0 {
		c.declareDeadlockLocked(t)
		return false
	}
	next := c.task(c.decideLocked(ready, t.key, p))
	if next == t {
		t.state = stRunning
		return true
	}
	next.state = stRunning
	c.running = next.key
	c.mu.Unlock()
	next.resume <- resumeMsg{}
	msg := <-t.resume
	c.mu.Lock()
	if msg.deadlock || c.deadlock || c.aborted {
		return false
	}
	return true
}

// declareDeadlockLocked releases every blocked task with a deadlock
// status. The caller (if any) is left to return false on its own.
func (c *Controller) declareDeadlockLocked(caller *task) {
	c.deadlock = true
	for _, u := range c.tasks {
		if u == caller || u.state != stBlocked {
			continue
		}
		u.state = stReady
		u.reason = blkNone
		select {
		case u.resume <- resumeMsg{deadlock: true}:
		default:
		}
	}
}

// YieldPoint is a pure preemption opportunity: the running task offers the
// token without blocking. False means deadlock teardown is in progress.
func (c *Controller) YieldPoint(key int, p Point) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.yieldLocked(c.task(key), p, false)
}

// Lock acquires the scheduler-modeled mutex at addr, blocking (by handing
// the token away) while another task owns it. Lock is itself a scheduling
// point before the acquire. Returns false on deadlock.
func (c *Controller) Lock(key int, addr int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.task(key)
	if !c.yieldLocked(t, PointLock, false) {
		return false
	}
	return c.acquireLocked(t, addr)
}

func (c *Controller) acquireLocked(t *task, addr int64) bool {
	for c.lockOwner[addr] != 0 {
		t.reason, t.waitAddr = blkLock, addr
		if !c.yieldLocked(t, PointLock, true) {
			return false
		}
		t.reason = blkNone
	}
	c.lockOwner[addr] = t.key
	return true
}

// releaseLocked frees the lock at addr (if owned by key) and makes every
// task blocked on it runnable again; they re-compete for the lock when
// scheduled, so the strategy decides who wins.
func (c *Controller) releaseLocked(key int, addr int64) {
	if c.lockOwner[addr] == key {
		delete(c.lockOwner, addr)
	}
	for _, u := range c.tasks {
		if u.state == stBlocked && u.reason == blkLock && u.waitAddr == addr {
			u.state = stReady
			u.reason = blkNone
		}
	}
}

// Unlock releases the mutex at addr and yields. Returns false on deadlock.
func (c *Controller) Unlock(key int, addr int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.releaseLocked(key, addr)
	return c.yieldLocked(c.task(key), PointUnlock, false)
}

// Wait atomically releases the lock and blocks on the condition variable
// cv; once signaled it reacquires the lock before returning. Returns false
// on deadlock.
func (c *Controller) Wait(key int, cv, lock int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.task(key)
	c.releaseLocked(key, lock)
	t.reason, t.waitAddr = blkCond, cv
	if !c.yieldLocked(t, PointWait, true) {
		return false
	}
	t.reason = blkNone
	return c.acquireLocked(t, lock)
}

// Signal wakes one waiter on cv — chosen by the strategy, so wake order is
// explored and recorded like any other decision — or all waiters when
// broadcast is set. Signaling is itself a scheduling point. Returns false
// on deadlock.
func (c *Controller) Signal(key int, cv int64, broadcast bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deadlock || c.aborted {
		return false
	}
	var waiters []int
	for _, u := range c.tasks {
		if u.state == stBlocked && u.reason == blkCond && u.waitAddr == cv {
			waiters = append(waiters, u.key)
		}
	}
	if broadcast {
		for _, w := range waiters {
			u := c.task(w)
			u.state = stReady
			u.reason = blkNone
		}
	} else if len(waiters) > 0 {
		u := c.task(c.decideLocked(waiters, key, PointSignal))
		u.state = stReady
		u.reason = blkNone
	}
	return c.yieldLocked(c.task(key), PointSignal, false)
}

// Join blocks until the target task exits. Returns false on deadlock.
func (c *Controller) Join(key, target int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.task(key)
	for c.task(target).state != stExited {
		t.reason, t.waitKey = blkJoin, target
		if !c.yieldLocked(t, PointJoin, true) {
			return false
		}
		t.reason = blkNone
	}
	return c.yieldLocked(t, PointJoin, false)
}

// AwaitExit blocks until any task exits — used when the interpreter's
// thread-id pool is exhausted and a spawner must wait for a slot. Returns
// false on deadlock.
func (c *Controller) AwaitExit(key int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.task(key)
	t.reason = blkExit
	if !c.yieldLocked(t, PointSpawn, true) {
		return false
	}
	t.reason = blkNone
	return true
}

// Exit retires the calling task, wakes its joiners and any spawners
// starved for a thread id, and hands the token onward. Exiting is a
// recorded scheduling decision like any other.
func (c *Controller) Exit(key int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.task(key)
	t.state = stExited
	for _, u := range c.tasks {
		if u.state != stBlocked {
			continue
		}
		if (u.reason == blkJoin && u.waitKey == key) || u.reason == blkExit {
			u.state = stReady
			u.reason = blkNone
		}
	}
	if c.deadlock || c.aborted {
		return
	}
	ready := c.readyLocked()
	if len(ready) == 0 {
		for _, u := range c.tasks {
			if u.state == stBlocked {
				c.declareDeadlockLocked(nil)
				return
			}
		}
		return // program over
	}
	next := c.task(c.decideLocked(ready, key, PointExit))
	next.state = stRunning
	c.running = next.key
	c.mu.Unlock()
	next.resume <- resumeMsg{}
	c.mu.Lock()
}

// Abort tears the schedule down from outside the program: every parked
// task — ready tasks waiting for the token as well as blocked ones — is
// released with a teardown token, and every subsequent controller call
// returns false, so all threads unwind at their next scheduling point.
// Unlike deadlock detection, which only fires when no task can run, Abort
// is called from another goroutine (a request timeout, a server drain)
// while the program is healthy; Deadlocked stays false and the interpreter
// unwinds without emitting deadlock reports. Idempotent, and a no-op after
// deadlock teardown has already begun.
func (c *Controller) Abort() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.aborted || c.deadlock {
		return
	}
	c.aborted = true
	for _, u := range c.tasks {
		if u.state == stExited {
			continue
		}
		if u.state == stBlocked {
			u.state = stReady
			u.reason = blkNone
		}
		select {
		case u.resume <- resumeMsg{deadlock: true}:
		default:
		}
	}
}

// Aborted reports whether Abort tore the run down.
func (c *Controller) Aborted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aborted
}

// Deadlocked reports whether the run was torn down by deadlock detection.
func (c *Controller) Deadlocked() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deadlock
}

// Decisions returns the number of scheduling decisions taken so far.
func (c *Controller) Decisions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nDec
}

// Diverged reports whether a Replay strategy had to fall back because the
// recorded trace did not match the execution.
func (c *Controller) Diverged() bool {
	type diverger interface{ Diverged() bool }
	if d, ok := c.strategy.(diverger); ok {
		return d.Diverged()
	}
	return false
}

// Trace serializes the recorded decision sequence (Options.Record must
// have been set) as a run-length-encoded trace.
func (c *Controller) Trace() *Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	tr := &Trace{
		Version:   TraceVersion,
		Strategy:  c.strategy.Name(),
		Seed:      c.strategy.Seed(),
		Decisions: int64(len(c.decisions)),
	}
	for _, k := range c.decisions {
		if n := len(tr.Steps); n > 0 && tr.Steps[n-1].Key == k {
			tr.Steps[n-1].N++
		} else {
			tr.Steps = append(tr.Steps, Step{Key: k, N: 1})
		}
	}
	return tr
}
