package sched

import (
	"reflect"
	"sync"
	"testing"
)

// runTasks drives n scripted tasks under a fresh controller: task i runs
// script[i](c, key) after Begin and exits afterwards. The first script is
// the "main" task (registered first, so it starts running); the others are
// registered by the harness before main starts, which is deterministic.
func runTasks(t *testing.T, s Strategy, rec bool, scripts ...func(c *Controller, key int)) *Controller {
	t.Helper()
	c := New(s, Options{Record: rec})
	keys := make([]int, len(scripts))
	for i := range scripts {
		keys[i] = c.Register()
	}
	var wg sync.WaitGroup
	for i, f := range scripts {
		wg.Add(1)
		go func(i int, f func(*Controller, int)) {
			defer wg.Done()
			c.Begin(keys[i])
			f(c, keys[i])
			c.Exit(keys[i])
		}(i, f)
	}
	wg.Wait()
	return c
}

// TestTokenSerialization: concurrent unsynchronized writes to a shared
// slice are safe because only the token holder runs (this test is part of
// the -race subset).
func TestTokenSerialization(t *testing.T) {
	var log []int
	worker := func(c *Controller, key int) {
		for i := 0; i < 50; i++ {
			log = append(log, key)
			if !c.YieldPoint(key, PointCheck) {
				t.Errorf("unexpected deadlock for task %d", key)
				return
			}
		}
	}
	runTasks(t, NewRandom(1), false, worker, worker, worker)
	if len(log) != 150 {
		t.Fatalf("log has %d entries, want 150", len(log))
	}
}

// TestLockMutualExclusion: a scheduler-modeled lock admits one holder at a
// time even under an adversarial random schedule.
func TestLockMutualExclusion(t *testing.T) {
	const lockAddr = 100
	inside := 0
	maxInside := 0
	worker := func(c *Controller, key int) {
		for i := 0; i < 20; i++ {
			if !c.Lock(key, lockAddr) {
				return
			}
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			c.YieldPoint(key, PointCheck)
			inside--
			if !c.Unlock(key, lockAddr) {
				return
			}
		}
	}
	runTasks(t, NewRandom(42), false, worker, worker, worker)
	if maxInside != 1 {
		t.Fatalf("lock admitted %d concurrent holders", maxInside)
	}
}

// TestCondSignalWakesWaiter: a waiter parked on a condition variable is
// woken by a signal and reacquires the lock.
func TestCondSignalWakesWaiter(t *testing.T) {
	const lock, cv = 100, 200
	state := 0
	waiter := func(c *Controller, key int) {
		c.Lock(key, lock)
		for state == 0 {
			if !c.Wait(key, cv, lock) {
				t.Error("waiter hit deadlock")
				return
			}
		}
		state = 2
		c.Unlock(key, lock)
	}
	signaler := func(c *Controller, key int) {
		c.Lock(key, lock)
		state = 1
		c.Unlock(key, lock)
		c.Signal(key, cv, false)
	}
	runTasks(t, NewRandom(7), false, signaler, waiter)
	if state != 2 {
		t.Fatalf("state = %d, want 2 (waiter never woke)", state)
	}
}

// TestBroadcastWakesAll: broadcast releases every waiter.
func TestBroadcastWakesAll(t *testing.T) {
	const lock, cv = 100, 200
	woken := 0
	ready := 0
	waiter := func(c *Controller, key int) {
		c.Lock(key, lock)
		ready++
		for ready < 4 { // 3 waiters + the broadcaster's mark
			if !c.Wait(key, cv, lock) {
				t.Error("waiter hit deadlock")
				return
			}
		}
		woken++
		c.Unlock(key, lock)
		c.Signal(key, cv, true) // chain the wakeup to the others
	}
	caster := func(c *Controller, key int) {
		// Let the waiters park first under round-robin.
		for i := 0; i < 20; i++ {
			c.YieldPoint(key, PointCheck)
		}
		c.Lock(key, lock)
		ready++
		c.Unlock(key, lock)
		c.Signal(key, cv, true)
	}
	runTasks(t, NewRoundRobin(1), false, caster, waiter, waiter, waiter)
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

// TestJoinBlocksUntilExit: join returns only after the target's Exit, and
// joining an already-exited task does not block.
func TestJoinBlocksUntilExit(t *testing.T) {
	done := false
	var childKey int
	child := func(c *Controller, key int) {
		for i := 0; i < 10; i++ {
			c.YieldPoint(key, PointCheck)
		}
		done = true
	}
	parent := func(c *Controller, key int) {
		if !c.Join(key, childKey) {
			t.Error("join hit deadlock")
			return
		}
		if !done {
			t.Error("join returned before child exit")
		}
		// Joining again (already exited) must not block.
		if !c.Join(key, childKey) {
			t.Error("re-join hit deadlock")
		}
	}
	c := New(NewRandom(3), Options{})
	pk := c.Register()
	childKey = c.Register()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); c.Begin(pk); parent(c, pk); c.Exit(pk) }()
	go func() { defer wg.Done(); c.Begin(childKey); child(c, childKey); c.Exit(childKey) }()
	wg.Wait()
}

// TestDeadlockDetection: a classic ABBA lock cycle is detected and both
// tasks are released with a failure status instead of hanging.
func TestDeadlockDetection(t *testing.T) {
	const a, b = 100, 200
	failures := 0
	mk := func(first, second int64) func(c *Controller, key int) {
		return func(c *Controller, key int) {
			if !c.Lock(key, first) {
				failures++
				return
			}
			for i := 0; i < 5; i++ { // give the sibling time to take its first lock
				if !c.YieldPoint(key, PointCheck) {
					failures++
					return
				}
			}
			if !c.Lock(key, second) {
				failures++
				return
			}
			c.Unlock(key, second)
			c.Unlock(key, first)
		}
	}
	c := runTasks(t, NewRoundRobin(1), false, mk(a, b), mk(b, a))
	if !c.Deadlocked() {
		t.Fatal("ABBA cycle not detected")
	}
	if failures == 0 {
		t.Fatal("no task observed the deadlock")
	}
}

// TestSelfDeadlock: one task locking the same mutex twice deadlocks alone.
func TestSelfDeadlock(t *testing.T) {
	c := runTasks(t, NewRandom(1), false, func(c *Controller, key int) {
		if !c.Lock(key, 100) {
			return
		}
		if c.Lock(key, 100) {
			t.Error("recursive lock acquired")
		}
	})
	if !c.Deadlocked() {
		t.Fatal("self-deadlock not detected")
	}
}

// TestSeededDeterminism: the same seed yields the same decision sequence;
// a different seed (almost surely) differs.
func TestSeededDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		var log []int
		worker := func(c *Controller, key int) {
			for i := 0; i < 40; i++ {
				log = append(log, key)
				c.YieldPoint(key, PointCheck)
			}
		}
		runTasks(t, NewRandom(seed), false, worker, worker, worker)
		return log
	}
	a1, a2 := run(5), run(5)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same seed produced different interleavings")
	}
	if b := run(6); reflect.DeepEqual(a1, b) {
		t.Fatal("different seeds produced identical interleavings (suspicious)")
	}
}

// TestRecordReplay: replaying a recorded trace reproduces the identical
// interleaving with no divergence.
func TestRecordReplay(t *testing.T) {
	var log []int
	worker := func(c *Controller, key int) {
		for i := 0; i < 30; i++ {
			log = append(log, key)
			c.YieldPoint(key, PointCheck)
		}
	}
	rec := runTasks(t, NewRandom(11), true, worker, worker, worker)
	want := append([]int(nil), log...)
	tr := rec.Trace()

	log = nil
	rep := runTasks(t, NewReplay(tr), false, worker, worker, worker)
	if rep.Diverged() {
		t.Fatal("faithful replay diverged")
	}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("replayed interleaving differs:\n got %v\nwant %v", log, want)
	}
}

// TestReplayDivergenceFallback: replaying a trace against a different
// program falls back deterministically and flags divergence.
func TestReplayDivergenceFallback(t *testing.T) {
	worker := func(n int) func(c *Controller, key int) {
		return func(c *Controller, key int) {
			for i := 0; i < n; i++ {
				c.YieldPoint(key, PointCheck)
			}
		}
	}
	rec := runTasks(t, NewRandom(2), true, worker(10), worker(10))
	tr := rec.Trace()
	// The "program" now runs three times as long: the trace runs out.
	rep := runTasks(t, NewReplay(tr), false, worker(30), worker(30))
	if !rep.Diverged() {
		t.Fatal("expected divergence when the trace runs out")
	}
}

// TestAwaitExit: a task blocked in AwaitExit resumes when another exits.
func TestAwaitExit(t *testing.T) {
	resumed := false
	var shortKey int
	short := func(c *Controller, key int) {
		for i := 0; i < 3; i++ {
			c.YieldPoint(key, PointCheck)
		}
	}
	waiter := func(c *Controller, key int) {
		if !c.AwaitExit(key) {
			t.Error("AwaitExit hit deadlock")
			return
		}
		resumed = true
	}
	c := New(NewRoundRobin(1), Options{})
	wk := c.Register()
	shortKey = c.Register()
	_ = shortKey
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); c.Begin(wk); waiter(c, wk); c.Exit(wk) }()
	go func() { defer wg.Done(); c.Begin(shortKey); short(c, shortKey); c.Exit(shortKey) }()
	wg.Wait()
	if !resumed {
		t.Fatal("AwaitExit never resumed")
	}
}

// TestAbort: aborting a controller denies further yields to every task —
// running, ready, and blocked alike — without flagging a deadlock.
func TestAbort(t *testing.T) {
	var denied [3]bool
	var started sync.WaitGroup
	started.Add(3)
	spin := func(c *Controller, key int, slot int) {
		started.Done()
		for i := 0; i < 1_000_000; i++ {
			if !c.YieldPoint(key, PointCheck) {
				denied[slot] = true
				return
			}
		}
	}
	blocked := func(c *Controller, key int, slot int) {
		started.Done()
		if !c.Lock(key, 100) {
			denied[slot] = true
			return
		}
		if !c.Lock(key, 100) { // self-block; only Abort can release it
			denied[slot] = true
			return
		}
	}
	c := New(NewRoundRobin(1), Options{})
	keys := []int{c.Register(), c.Register(), c.Register()}
	var wg sync.WaitGroup
	run := func(i int, f func(*Controller, int, int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Begin(keys[i])
			f(c, keys[i], i)
			c.Exit(keys[i])
		}()
	}
	run(0, spin)
	run(1, spin)
	run(2, blocked)
	started.Wait()
	c.Abort()
	wg.Wait()
	if !c.Aborted() {
		t.Fatal("Aborted() = false after Abort")
	}
	if c.Deadlocked() {
		t.Fatal("Abort must not masquerade as a deadlock")
	}
	for i, d := range denied {
		if !d {
			t.Errorf("task %d was not released by Abort", i)
		}
	}
	c.Abort() // idempotent
}
