package sched

import (
	"reflect"
	"testing"
)

func picks(s Strategy, ready []int, cur int, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = s.Pick(ready, cur, int64(i), PointCheck)
		cur = out[i]
	}
	return out
}

func TestRandomDeterministic(t *testing.T) {
	ready := []int{1, 2, 3, 4}
	a := picks(NewRandom(99), ready, 1, 64)
	b := picks(NewRandom(99), ready, 1, 64)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed gave different pick sequences")
	}
	c := picks(NewRandom(100), ready, 1, 64)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds gave identical pick sequences")
	}
	seen := map[int]bool{}
	for _, k := range a {
		seen[k] = true
	}
	if len(seen) < 3 {
		t.Fatalf("random picks covered only %d of 4 tasks in 64 draws", len(seen))
	}
}

func TestRoundRobinRotation(t *testing.T) {
	ready := []int{1, 2, 3}
	got := picks(NewRoundRobin(1), ready, 1, 6)
	want := []int{2, 3, 1, 2, 3, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rr1 rotation = %v, want %v", got, want)
	}
}

func TestRoundRobinQuantum(t *testing.T) {
	ready := []int{1, 2, 3}
	got := picks(NewRoundRobin(3), ready, 1, 6)
	// Two points keep the current task, every third rotates.
	want := []int{1, 1, 2, 2, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rr3 schedule = %v, want %v", got, want)
	}
}

func TestRoundRobinSkipsNonReady(t *testing.T) {
	rr := NewRoundRobin(1)
	if got := rr.Pick([]int{1, 3}, 1, 0, PointCheck); got != 3 {
		t.Fatalf("pick after 1 among {1,3} = %d, want 3", got)
	}
	if got := rr.Pick([]int{1, 3}, 3, 1, PointCheck); got != 1 {
		t.Fatalf("cyclic pick after 3 among {1,3} = %d, want 1", got)
	}
}

func TestPCTPrioritySchedule(t *testing.T) {
	ready := []int{1, 2, 3}
	a := picks(NewPCT(7, 2, 100), ready, 1, 50)
	b := picks(NewPCT(7, 2, 100), ready, 1, 50)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same PCT seed gave different schedules")
	}
	// With no change point hit yet, the highest-priority task runs
	// continuously: the first picks are constant until a change point.
	p := NewPCT(12, 0, 100)
	first := p.Pick(ready, 1, 0, PointCheck)
	for i := 1; i < 20; i++ {
		if got := p.Pick(ready, first, int64(i), PointCheck); got != first {
			t.Fatalf("PCT without change points switched task at decision %d", i)
		}
	}
}

func TestPCTDemotion(t *testing.T) {
	// Force a change point at decision 0 by constructing directly.
	p := &PCT{prios: make(map[int]uint64), changes: map[int64]bool{0: true}, low: 1 << 20, x: 1}
	ready := []int{1, 2}
	// Decision 0 demotes task 1 (cur); task 2 must win from then on.
	if got := p.Pick(ready, 1, 0, PointCheck); got != 2 {
		t.Fatalf("demoted task still picked: got %d", got)
	}
}

func TestReplayFollowsTrace(t *testing.T) {
	tr := &Trace{
		Version:   TraceVersion,
		Decisions: 5,
		Steps:     []Step{{Key: 2, N: 2}, {Key: 1, N: 1}, {Key: 3, N: 2}},
	}
	r := NewReplay(tr)
	ready := []int{1, 2, 3}
	want := []int{2, 2, 1, 3, 3}
	for i, w := range want {
		if got := r.Pick(ready, 1, int64(i), PointCheck); got != w {
			t.Fatalf("replay decision %d = %d, want %d", i, got, w)
		}
	}
	if r.Diverged() {
		t.Fatal("faithful replay marked diverged")
	}
	// Trace exhausted: deterministic fallback + divergence flag.
	if got := r.Pick(ready, 1, 5, PointCheck); got != ready[0] {
		t.Fatalf("fallback pick = %d, want %d", got, ready[0])
	}
	if !r.Diverged() {
		t.Fatal("exhausted replay not marked diverged")
	}
}

func TestReplayDivergesOnMissingKey(t *testing.T) {
	tr := &Trace{Version: TraceVersion, Decisions: 1, Steps: []Step{{Key: 9, N: 1}}}
	r := NewReplay(tr)
	if got := r.Pick([]int{1, 2}, 1, 0, PointCheck); got != 1 {
		t.Fatalf("fallback pick = %d, want 1", got)
	}
	if !r.Diverged() {
		t.Fatal("replay of unready key not marked diverged")
	}
}
