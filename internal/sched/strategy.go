package sched

import "fmt"

// Strategy makes interleaving decisions. Pick receives the ready task keys
// in ascending order (never empty), the key of the yielding task, the
// global decision index, and the point class, and returns the key to run
// next (must be a member of ready; the Controller falls back to ready[0]
// otherwise). Strategies are used single-threaded: only the token holder
// decides.
type Strategy interface {
	Pick(ready []int, cur int, decision int64, p Point) int
	Name() string
	Seed() int64
}

// splitmix64 advances and hashes the state; a small, well-mixed PRNG.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Random picks uniformly among the ready tasks at every decision, from a
// seeded deterministic generator: the (program, seed) pair reproduces the
// identical schedule.
type Random struct {
	seed int64
	x    uint64
}

// NewRandom returns the seeded uniform strategy.
func NewRandom(seed int64) *Random {
	return &Random{seed: seed, x: uint64(seed)*0x9e3779b97f4a7c15 + 1}
}

func (r *Random) Pick(ready []int, cur int, decision int64, p Point) int {
	return ready[splitmix64(&r.x)%uint64(len(ready))]
}

func (r *Random) Name() string { return "random" }
func (r *Random) Seed() int64  { return r.seed }

// RoundRobin keeps the current task running for a fixed quantum of
// scheduling points, then rotates to the next ready task in cyclic key
// order. Sweeping the quantum over 1..N yields a family of structured
// schedules that complement random exploration.
type RoundRobin struct {
	quantum int64
	n       int64
}

// NewRoundRobin returns a round-robin strategy with the given quantum
// (clamped to >= 1).
func NewRoundRobin(quantum int64) *RoundRobin {
	if quantum < 1 {
		quantum = 1
	}
	return &RoundRobin{quantum: quantum}
}

func (r *RoundRobin) Pick(ready []int, cur int, decision int64, p Point) int {
	r.n++
	if r.n%r.quantum != 0 {
		for _, k := range ready {
			if k == cur {
				return cur
			}
		}
	}
	// The next ready key strictly after cur, cyclically.
	for _, k := range ready {
		if k > cur {
			return k
		}
	}
	return ready[0]
}

func (r *RoundRobin) Name() string { return fmt.Sprintf("rr%d", r.quantum) }
func (r *RoundRobin) Seed() int64  { return r.quantum }

// PCT is the probabilistic concurrency testing strategy (Burckhardt et
// al.): every task gets a random priority at first sight, the
// highest-priority ready task always runs, and at d-1 random change points
// the running task's priority is demoted below every initial priority.
// With enough schedules this guarantees detection probability 1/(n·k^(d-1))
// for bugs of depth d.
type PCT struct {
	seed    int64
	x       uint64
	prios   map[int]uint64
	changes map[int64]bool
	low     uint64
}

// NewPCT returns a PCT strategy with changePoints priority demotions
// sampled over the first horizon decisions.
func NewPCT(seed int64, changePoints int, horizon int64) *PCT {
	p := &PCT{
		seed:    seed,
		x:       uint64(seed)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019,
		prios:   make(map[int]uint64),
		changes: make(map[int64]bool),
		low:     1 << 20,
	}
	if horizon < 1 {
		horizon = 1
	}
	for len(p.changes) < changePoints && int64(len(p.changes)) < horizon {
		p.changes[int64(splitmix64(&p.x)%uint64(horizon))] = true
	}
	return p
}

func (p *PCT) prio(k int) uint64 {
	pr, ok := p.prios[k]
	if !ok {
		// Initial priorities live far above the demotion band; ties are
		// broken by key, so uniqueness is not required.
		pr = 1<<40 + splitmix64(&p.x)%(1<<30)
		p.prios[k] = pr
	}
	return pr
}

func (p *PCT) Pick(ready []int, cur int, decision int64, pt Point) int {
	if p.changes[decision] {
		p.prios[cur] = p.low
		p.low--
	}
	best := ready[0]
	bestPr := p.prio(best)
	for _, k := range ready[1:] {
		if pr := p.prio(k); pr > bestPr {
			best, bestPr = k, pr
		}
	}
	return best
}

func (p *PCT) Name() string { return "pct" }
func (p *PCT) Seed() int64  { return p.seed }

// Replay follows a recorded trace decision-for-decision. If the trace runs
// out or names a task that is not ready — possible when replaying against
// a different program or configuration than was recorded — it falls back
// to the lowest ready key and marks the run diverged.
type Replay struct {
	trace    *Trace
	step     int
	off      int64
	diverged bool
}

// NewReplay returns a strategy replaying tr.
func NewReplay(tr *Trace) *Replay { return &Replay{trace: tr} }

func (r *Replay) Pick(ready []int, cur int, decision int64, p Point) int {
	for r.step < len(r.trace.Steps) && r.off >= r.trace.Steps[r.step].N {
		r.step++
		r.off = 0
	}
	if r.step >= len(r.trace.Steps) {
		r.diverged = true
		return ready[0]
	}
	want := r.trace.Steps[r.step].Key
	r.off++
	for _, k := range ready {
		if k == want {
			return k
		}
	}
	r.diverged = true
	return ready[0]
}

// Diverged reports whether the replay had to deviate from the trace.
func (r *Replay) Diverged() bool { return r.diverged }

func (r *Replay) Name() string { return "replay:" + r.trace.Strategy }
func (r *Replay) Seed() int64  { return r.trace.Seed }
