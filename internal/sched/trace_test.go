package sched

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{
		Version:   TraceVersion,
		Strategy:  "random",
		Seed:      42,
		Decisions: 6,
		Steps:     []Step{{Key: 1, N: 3}, {Key: 2, N: 1}, {Key: 1, N: 2}},
	}
	data, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, tr)
	}
}

func TestTraceVersionCheck(t *testing.T) {
	if _, err := UnmarshalTrace([]byte(`{"version":99,"steps":[]}`)); err == nil {
		t.Fatal("unsupported version accepted")
	}
	if _, err := UnmarshalTrace([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTraceFileIO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tr := &Trace{Version: TraceVersion, Strategy: "rr2", Seed: 2, Decisions: 1, Steps: []Step{{Key: 1, N: 1}}}
	if err := WriteTraceFile(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("file round trip mismatch: %+v vs %+v", back, tr)
	}
	if _, err := ReadTraceFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

func TestControllerTraceRLE(t *testing.T) {
	c := New(NewRandom(1), Options{Record: true})
	c.decisions = []int{1, 1, 2, 2, 2, 1}
	c.nDec = 6
	tr := c.Trace()
	want := []Step{{Key: 1, N: 2}, {Key: 2, N: 3}, {Key: 1, N: 1}}
	if !reflect.DeepEqual(tr.Steps, want) {
		t.Fatalf("RLE steps = %v, want %v", tr.Steps, want)
	}
	if tr.Decisions != 6 {
		t.Fatalf("Decisions = %d, want 6", tr.Decisions)
	}
}
