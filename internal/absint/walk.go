// AST walking utilities: a plain pre-order walker over statements and
// expressions, and a scope-tracking walker that maintains a typer.Env so
// visitors can call the points-to evaluator (which resolves identifiers
// against lexical scopes) at any node.
package absint

import (
	"repro/internal/ast"
	"repro/internal/typer"
	"repro/internal/types"
)

// forEachStmt visits s and every statement nested under it, pre-order.
func forEachStmt(s ast.Stmt, visit func(ast.Stmt)) {
	if s == nil {
		return
	}
	visit(s)
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			forEachStmt(st, visit)
		}
	case *ast.If:
		forEachStmt(s.Then, visit)
		forEachStmt(s.Else, visit)
	case *ast.While:
		forEachStmt(s.Body, visit)
	case *ast.DoWhile:
		forEachStmt(s.Body, visit)
	case *ast.For:
		forEachStmt(s.Init, visit)
		forEachStmt(s.Body, visit)
	case *ast.Switch:
		for _, c := range s.Cases {
			for _, st := range c.Body {
				forEachStmt(st, visit)
			}
		}
	}
}

// forEachExpr visits e and every subexpression, pre-order.
func forEachExpr(e ast.Expr, visit func(ast.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch e := e.(type) {
	case *ast.Unary:
		forEachExpr(e.X, visit)
	case *ast.Postfix:
		forEachExpr(e.X, visit)
	case *ast.Binary:
		forEachExpr(e.L, visit)
		forEachExpr(e.R, visit)
	case *ast.Assign:
		forEachExpr(e.L, visit)
		forEachExpr(e.R, visit)
	case *ast.Cond:
		forEachExpr(e.C, visit)
		forEachExpr(e.T, visit)
		forEachExpr(e.F, visit)
	case *ast.Call:
		forEachExpr(e.Fun, visit)
		for _, a := range e.Args {
			forEachExpr(a, visit)
		}
	case *ast.Index:
		forEachExpr(e.X, visit)
		forEachExpr(e.I, visit)
	case *ast.Member:
		forEachExpr(e.X, visit)
	case *ast.Cast:
		forEachExpr(e.X, visit)
	case *ast.Scast:
		forEachExpr(e.X, visit)
	}
}

// exprsOf visits every expression directly attached to the statement (not
// statements nested under it).
func exprsOf(s ast.Stmt, visit func(ast.Expr)) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		forEachExpr(s.X, visit)
	case *ast.DeclStmt:
		forEachExpr(s.Init, visit)
	case *ast.If:
		forEachExpr(s.Cond, visit)
	case *ast.While:
		forEachExpr(s.Cond, visit)
	case *ast.DoWhile:
		forEachExpr(s.Cond, visit)
	case *ast.For:
		forEachExpr(s.Cond, visit)
		forEachExpr(s.Post, visit)
	case *ast.Return:
		forEachExpr(s.X, visit)
	case *ast.Switch:
		forEachExpr(s.X, visit)
	}
}

// forAllExprs visits every expression anywhere under the statement.
func forAllExprs(s ast.Stmt, visit func(ast.Expr)) {
	forEachStmt(s, func(st ast.Stmt) { exprsOf(st, visit) })
}

// scopedWalk walks one function body maintaining the lexical environment
// (mirroring vet's walker: params from NewEnv, a scope per block, locals
// defined after their initializer), calling visit on every expression with
// the environment current at that point.
func scopedWalk(w *types.World, fn string, visit func(env *typer.Env, e ast.Expr)) {
	fi := w.Funcs[fn]
	if fi == nil || fi.Decl == nil || fi.Decl.Body == nil {
		return
	}
	env := typer.NewEnv(w, fi)
	env.Push()
	sw := &scopedWalker{env: env, visit: visit}
	for _, s := range fi.Decl.Body.Stmts {
		sw.stmt(s)
	}
	env.Pop()
}

type scopedWalker struct {
	env   *typer.Env
	visit func(env *typer.Env, e ast.Expr)
}

func (sw *scopedWalker) expr(e ast.Expr) {
	forEachExpr(e, func(x ast.Expr) { sw.visit(sw.env, x) })
}

func (sw *scopedWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.Block:
		sw.env.Push()
		for _, st := range s.Stmts {
			sw.stmt(st)
		}
		sw.env.Pop()
	case *ast.ExprStmt:
		sw.expr(s.X)
	case *ast.DeclStmt:
		if s.Init != nil {
			sw.expr(s.Init)
		}
		sw.env.Define(&typer.Sym{Kind: typer.SymLocal, Name: s.Name, Type: sw.env.F.Locals[s], Decl: s})
	case *ast.If:
		sw.expr(s.Cond)
		sw.stmt(s.Then)
		sw.stmt(s.Else)
	case *ast.While:
		sw.expr(s.Cond)
		sw.stmt(s.Body)
	case *ast.DoWhile:
		sw.stmt(s.Body)
		sw.expr(s.Cond)
	case *ast.For:
		sw.env.Push()
		sw.stmt(s.Init)
		if s.Cond != nil {
			sw.expr(s.Cond)
		}
		sw.stmt(s.Body)
		if s.Post != nil {
			sw.expr(s.Post)
		}
		sw.env.Pop()
	case *ast.Return:
		if s.X != nil {
			sw.expr(s.X)
		}
	case *ast.Switch:
		sw.expr(s.X)
		sw.env.Push()
		for _, c := range s.Cases {
			for _, st := range c.Body {
				sw.stmt(st)
			}
		}
		sw.env.Pop()
	}
}
