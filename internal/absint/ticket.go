// Ticket certification, part 1: recognizing the ticket pattern in the AST
// and proving the counter's integrity.
//
// A "ticket" is a lock-protected monotone counter drawn with the idiom
//
//	lock(m);
//	int x = obj->next;          // counter read, locked mode
//	if (x >= LIMIT) { unlock(m); return ...; }
//	obj->next = x + c;          // counter increment, same lock, c >= 1
//	unlock(m);
//
// Every execution of the pattern observes a distinct counter value: the
// read and the increment happen under one continuously held unique lock
// (the only statements permitted between them are pure-condition early
// exits), and the counter only ever moves by +c. Distinctness is what the
// interval engine's τ symbol stands for; the region-disjointness proof in
// summary.go is built on it.
//
// Counter integrity requires that nothing else writes the counter: every
// recorded write access overlapping the counter field must be one of the
// group's certified increments or a main pre-spawn initialization.
package absint

import (
	"repro/internal/ast"
	"repro/internal/pointsto"
	"repro/internal/token"
)

// cert is one matched ticket pattern.
type cert struct {
	fn       string
	x        string        // the ticket local
	decl     *ast.DeclStmt // its declaration (identity for scoped lookups)
	readPos  token.Pos     // counter read position (the τ seed site)
	writePos token.Pos     // increment write position
	step     int64         // the increment constant c
	lock     pointsto.Obj  // the protecting unique lock
	counter  pointsto.Ref  // the counter field
}

// certGroup is every cert over one counter (they share the τ stream: any
// two executions, in any function of the group, draw distinct values).
type certGroup struct {
	counter pointsto.Ref
	lock    pointsto.Obj
	certs   []*cert
	incPos  map[token.Pos]bool // the group's increment write positions
}

// accKey indexes access records by position and direction.
type accKey struct {
	pos   token.Pos
	write bool
}

type accessIndex map[accKey][]*Access

func indexAccesses(f *Facts) accessIndex {
	idx := make(accessIndex)
	for i := range f.Accesses {
		a := &f.Accesses[i]
		k := accKey{a.Pos, a.Write}
		idx[k] = append(idx[k], a)
	}
	return idx
}

// directAccess returns the single non-referent access recorded at
// (pos, write), or nil if absent or ambiguous.
func (idx accessIndex) directAccess(pos token.Pos, write bool) *Access {
	var found *Access
	for _, a := range idx[accKey{pos, write}] {
		if a.Referent {
			continue
		}
		if found != nil {
			return nil
		}
		found = a
	}
	return found
}

// findCerts matches the ticket pattern in every function and returns the
// groups that survive the counter-integrity check.
func findCerts(f *Facts, idx accessIndex) []*certGroup {
	var certs []*cert
	for name, fi := range f.World.Funcs {
		if fi.Decl == nil || fi.Decl.Body == nil {
			continue
		}
		forEachStmt(fi.Decl.Body, func(s ast.Stmt) {
			var lists [][]ast.Stmt
			switch s := s.(type) {
			case *ast.Block:
				lists = [][]ast.Stmt{s.Stmts}
			case *ast.Switch:
				for _, c := range s.Cases {
					lists = append(lists, c.Body)
				}
			}
			for _, list := range lists {
				certs = append(certs, matchList(f, idx, name, fi.Decl.Body, list)...)
			}
		})
	}

	// One cert per (function, counter): a function that draws the same
	// ticket twice would need two τ symbols with no relation between them,
	// so both matches are dropped.
	type fnCounter struct {
		fn      string
		counter pointsto.Ref
	}
	count := make(map[fnCounter]int)
	for _, c := range certs {
		count[fnCounter{c.fn, c.counter}]++
	}
	kept := certs[:0]
	for _, c := range certs {
		if count[fnCounter{c.fn, c.counter}] == 1 {
			kept = append(kept, c)
		}
	}

	// Group by counter; the lock must agree across the group.
	byCounter := make(map[pointsto.Ref]*certGroup)
	order := []pointsto.Ref{}
	for _, c := range kept {
		g := byCounter[c.counter]
		if g == nil {
			g = &certGroup{counter: c.counter, lock: c.lock, incPos: make(map[token.Pos]bool)}
			byCounter[c.counter] = g
			order = append(order, c.counter)
		}
		if g.lock != c.lock {
			g.certs = nil // mixed locks: poison the group
			continue
		}
		g.certs = append(g.certs, c)
		g.incPos[c.writePos] = true
	}

	var out []*certGroup
	for _, key := range order {
		g := byCounter[key]
		if len(g.certs) > 0 && counterIntact(f, g) {
			out = append(out, g)
		}
	}
	return out
}

// matchList scans one statement list for the ticket pattern.
func matchList(f *Facts, idx accessIndex, fn string, body ast.Stmt, list []ast.Stmt) []*cert {
	var out []*cert
	for i, s := range list {
		d, ok := s.(*ast.DeclStmt)
		if !ok || d.Init == nil {
			continue
		}
		read := idx.directAccess(d.Init.Pos(), false)
		if read == nil || !read.Locked || len(read.Must) != 1 || len(read.Objs) != 1 {
			continue
		}
		lock := read.Must[0]
		counter := read.Objs[0]
		if counter.Field == "$" || !f.Pts.UniqueAlloc(lock) {
			continue
		}
		readStr := ast.ExprString(d.Init)

		// Skip pure-condition early exits between read and increment; any
		// other statement breaks lock continuity structurally.
		j := i + 1
		for j < len(list) {
			ifs, isIf := list[j].(*ast.If)
			if !isIf || ifs.Else != nil || !pureExpr(ifs.Cond) || !endsInReturn(ifs.Then) {
				break
			}
			j++
		}
		if j >= len(list) {
			continue
		}
		es, ok := list[j].(*ast.ExprStmt)
		if !ok {
			continue
		}
		as, ok := es.X.(*ast.Assign)
		if !ok || as.Op != token.ASSIGN || ast.ExprString(as.L) != readStr {
			continue
		}
		step, isInc := incrementOf(as.R, d.Name)
		if !isInc || step < 1 {
			continue
		}
		write := idx.directAccess(as.L.Pos(), true)
		if write == nil || !write.Locked || len(write.Objs) != 1 || write.Objs[0] != counter {
			continue
		}
		if !containsObj(write.Must, lock) {
			continue
		}
		if !immutableLocal(body, d) {
			continue
		}
		out = append(out, &cert{
			fn: fn, x: d.Name, decl: d,
			readPos: d.Init.Pos(), writePos: as.L.Pos(),
			step: step, lock: lock, counter: counter,
		})
	}
	return out
}

// incrementOf matches `x + c` or `c + x` and returns c.
func incrementOf(e ast.Expr, x string) (int64, bool) {
	b, ok := e.(*ast.Binary)
	if !ok || b.Op != token.PLUS {
		return 0, false
	}
	if id, ok := b.L.(*ast.Ident); ok && id.Name == x {
		if lit, ok := b.R.(*ast.IntLit); ok {
			return lit.Value, true
		}
	}
	if id, ok := b.R.(*ast.Ident); ok && id.Name == x {
		if lit, ok := b.L.(*ast.IntLit); ok {
			return lit.Value, true
		}
	}
	return 0, false
}

// pureExpr rejects anything with side effects or lock operations: calls,
// assignments, sharing casts, increments.
func pureExpr(e ast.Expr) bool {
	pure := true
	forEachExpr(e, func(x ast.Expr) {
		switch x := x.(type) {
		case *ast.Call, *ast.Assign, *ast.Scast, *ast.Postfix:
			pure = false
		case *ast.Unary:
			if x.Op == token.INC || x.Op == token.DEC {
				pure = false
			}
		}
	})
	return pure
}

// endsInReturn reports that the branch always leaves the function.
func endsInReturn(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.Return:
		return true
	case *ast.Block:
		if len(s.Stmts) == 0 {
			return false
		}
		return endsInReturn(s.Stmts[len(s.Stmts)-1])
	}
	return false
}

// immutableLocal verifies the ticket local is never reassigned, mutated,
// address-taken, or shadowed anywhere in the function.
func immutableLocal(body ast.Stmt, d *ast.DeclStmt) bool {
	ok := true
	forEachStmt(body, func(s ast.Stmt) {
		if dd, isDecl := s.(*ast.DeclStmt); isDecl && dd != d && dd.Name == d.Name {
			ok = false
		}
	})
	if !ok {
		return false
	}
	forAllExprs(body, func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Assign:
			if id, isId := e.L.(*ast.Ident); isId && id.Name == d.Name {
				ok = false
			}
		case *ast.Unary:
			if e.Op == token.INC || e.Op == token.DEC || e.Op == token.AMP {
				if id, isId := e.X.(*ast.Ident); isId && id.Name == d.Name {
					ok = false
				}
			}
		case *ast.Postfix:
			if id, isId := e.X.(*ast.Ident); isId && id.Name == d.Name {
				ok = false
			}
		}
	})
	return ok
}

// counterIntact verifies counter integrity for a group: every recorded
// write access (any mode, referents included) overlapping the counter
// field is one of the group's increments or a main pre-spawn write.
func counterIntact(f *Facts, g *certGroup) bool {
	for i := range f.Accesses {
		a := &f.Accesses[i]
		if !a.Write {
			continue
		}
		for _, r := range a.Objs {
			if r.Obj != g.counter.Obj || !fieldsOverlap(r.Field, g.counter.Field) {
				continue
			}
			if !g.incPos[a.Pos] && !precedesSharing(f, a) {
				return false
			}
		}
	}
	return true
}

// fieldsOverlap is the conservative overlap of one-level field refs:
// "$" is any field, "" the whole base.
func fieldsOverlap(a, b string) bool {
	return a == b || a == "$" || b == "$" || a == "" || b == ""
}

func containsObj(s []pointsto.Obj, o pointsto.Obj) bool {
	for _, x := range s {
		if x == o {
			return true
		}
	}
	return false
}
