// May-happen-in-parallel phase analysis: detecting the fully structured
// spawn/join shape of main. When every spawn in the program is a top-level
// statement of main whose handle is a main local used only to be joined by
// a later top-level statement, the program's parallel phase is the interval
// (firstSpawnSeq, maxJoinSeq]: before it only main runs, and after it only
// main runs again (each join clears the dead thread's shadow bits, so no
// surviving shadow state can make a later main-only check fire).
package absint

import (
	"repro/internal/ast"
	"repro/internal/token"
)

// structuredJoin reports whether the program's spawn/join structure is
// fully structured as above, and if so the top-level statement index of
// the last join in main. Accesses in main at seq > maxJoinSeq run strictly
// after every spawned thread has terminated.
func structuredJoin(f *Facts) (structured bool, maxJoinSeq int) {
	mainFi := f.World.Funcs["main"]
	if mainFi == nil || mainFi.Decl == nil || mainFi.Decl.Body == nil {
		return false, 0
	}
	top := mainFi.Decl.Body.Stmts

	// Classify main's top-level statements: spawn-handle declarations and
	// assignments, and join statements.
	type spawnRec struct {
		seq    int
		joined bool
	}
	handles := make(map[string]*spawnRec)
	assignForm := make(map[string]bool) // handle bound via `h = spawn(...)`
	maxJoinSeq = -1
	allowedSpawns := make(map[*ast.Call]bool)
	allowedJoinIdents := make(map[*ast.Ident]bool)
	assignIdents := make(map[*ast.Ident]bool)

	for seq, s := range top {
		switch s := s.(type) {
		case *ast.DeclStmt:
			if c := spawnCall(s.Init); c != nil {
				if _, dup := handles[s.Name]; dup {
					return false, 0 // handle name reused
				}
				handles[s.Name] = &spawnRec{seq: seq}
				allowedSpawns[c] = true
			}
		case *ast.ExprStmt:
			if as, ok := s.X.(*ast.Assign); ok && as.Op == token.ASSIGN {
				if c := spawnCall(as.R); c != nil {
					id, ok := as.L.(*ast.Ident)
					if !ok {
						continue // spawn in a non-ident assignment: caught below
					}
					if _, dup := handles[id.Name]; dup {
						return false, 0
					}
					handles[id.Name] = &spawnRec{seq: seq}
					assignForm[id.Name] = true
					allowedSpawns[c] = true
					assignIdents[id] = true
				}
			}
			if c := joinCall(s.X); c != nil {
				if id, ok := c.Args[0].(*ast.Ident); ok {
					if h, isHandle := handles[id.Name]; isHandle {
						if seq <= h.seq {
							return false, 0
						}
						h.joined = true
						if seq > maxJoinSeq {
							maxJoinSeq = seq
						}
						allowedJoinIdents[id] = true
					}
				}
			}
		}
	}
	if len(handles) == 0 {
		// No spawns at all: there is no parallel phase. Report structured
		// with maxJoinSeq = -1 only if truly no spawn exists anywhere.
		maxJoinSeq = -1
	}

	// Every spawn handle must be joined.
	for _, h := range handles {
		if len(handles) > 0 && !h.joined {
			return false, 0
		}
	}

	// Every spawn call in the whole program must be one of the allowed
	// top-level forms in main. (A name shadowing the builtin makes us treat
	// more calls as spawns, which only errs toward "unstructured".)
	for name, fi := range f.World.Funcs {
		if fi.Decl == nil || fi.Decl.Body == nil {
			continue
		}
		ok := true
		forAllExprs(fi.Decl.Body, func(e ast.Expr) {
			if c, isCall := e.(*ast.Call); isCall {
				if isBuiltinCall(c, "spawn") && (name != "main" || !allowedSpawns[c]) {
					ok = false
				}
			}
		})
		if !ok {
			return false, 0
		}
	}

	// Handle hygiene: a handle identifier may appear only at its binding
	// and its joins — if main's body (or any other function) mentions it
	// anywhere else, the handle may leak and the join accounting above is
	// not trustworthy. Handles bound by assignment must also be main
	// locals (a global handle could be reached from other functions).
	for name := range handles {
		if assignForm[name] && !declaresLocal(mainFi.Decl.Body, name) {
			return false, 0
		}
		ok := true
		forAllExprs(mainFi.Decl.Body, func(e ast.Expr) {
			if id, isIdent := e.(*ast.Ident); isIdent && id.Name == name {
				if !allowedJoinIdents[id] && !assignIdents[id] {
					ok = false
				}
			}
		})
		if !ok {
			return false, 0
		}
	}

	return true, maxJoinSeq
}

// spawnCall returns e as a call to the spawn builtin, or nil.
func spawnCall(e ast.Expr) *ast.Call {
	if c, ok := e.(*ast.Call); ok && isBuiltinCall(c, "spawn") {
		return c
	}
	return nil
}

// joinCall returns e as a one-argument call to the join builtin, or nil.
func joinCall(e ast.Expr) *ast.Call {
	if c, ok := e.(*ast.Call); ok && isBuiltinCall(c, "join") && len(c.Args) == 1 {
		return c
	}
	return nil
}

// isBuiltinCall reports a direct call to the named builtin. Shadowing is
// ignored deliberately: misclassifying a user call as a builtin only adds
// conservatism.
func isBuiltinCall(c *ast.Call, name string) bool {
	id, ok := c.Fun.(*ast.Ident)
	return ok && id.Name == name
}

// declaresLocal reports whether the statement tree declares a local with
// the given name.
func declaresLocal(s ast.Stmt, name string) bool {
	found := false
	forEachStmt(s, func(st ast.Stmt) {
		if d, ok := st.(*ast.DeclStmt); ok && d.Name == name {
			found = true
		}
	})
	return found
}
