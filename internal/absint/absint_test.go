package absint_test

// Rule-level tests for the absint tier, driven through the vet pipeline the
// way the production stack runs it (vet collects the access facts, absint
// proves, vet reports). Each rule family gets a distilled program that it —
// and only it — can discharge, plus ablation checks that turning a tier off
// removes exactly its proofs.

import (
	"strings"
	"testing"

	"repro/internal/absint"
	"repro/internal/bench"
	"repro/internal/parser"
	"repro/internal/qualinfer"
	"repro/internal/types"
	"repro/internal/vet"
)

func analyze(t *testing.T, src string, opts absint.Options) *vet.Report {
	t.Helper()
	prog, err := parser.ParseProgram(parser.Source{Name: "prog.shc", Text: src})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	w := types.BuildWorld(prog)
	if len(w.Errors) > 0 {
		t.Fatalf("resolve: %v", w.Errors[0])
	}
	return vet.AnalyzeWith(w, qualinfer.Infer(w), opts)
}

// reasons collects the proof reasons the report carries, keyed by count.
func reasons(rep *vet.Report) map[string]int {
	out := make(map[string]int)
	for _, p := range rep.Proofs() {
		out[p.Reason]++
	}
	return out
}

const preSpawnSrc = `
void *w(void *d) { return NULL; }

int main(void) {
	char *b = malloc(16);
	char dynamic *p = SCAST(char dynamic *, b);
	p[0] = 5;
	int t = spawn(w, NULL);
	join(t);
	return 0;
}
`

func TestRulePreSpawn(t *testing.T) {
	rep := analyze(t, preSpawnSrc, absint.DefaultOptions())
	if got := reasons(rep)["pre-spawn"]; got < 1 {
		t.Fatalf("pre-spawn proofs = %d, want >= 1; proofs: %v", got, rep.Proofs())
	}
	// The phase rules carry the proof; with MHP off it must disappear.
	rep = analyze(t, preSpawnSrc, absint.Options{Intervals: true, Summaries: true})
	if got := reasons(rep)["pre-spawn"]; got != 0 {
		t.Fatalf("pre-spawn proofs with MHP off = %d, want 0", got)
	}
}

const postJoinSrc = `
void *w(void *d) {
	char dynamic *p = d;
	p[0] = 1;
	return NULL;
}

int main(void) {
	char *b = malloc(16);
	char dynamic *p = SCAST(char dynamic *, b);
	int t = spawn(w, p);
	join(t);
	int s = p[0];
	return s;
}
`

func TestRulePostJoin(t *testing.T) {
	rep := analyze(t, postJoinSrc, absint.DefaultOptions())
	if got := reasons(rep)["post-join"]; got < 1 {
		t.Fatalf("post-join proofs = %d, want >= 1; proofs: %v", got, rep.Proofs())
	}
}

// phaseDisjointSrc builds the buffer through an unqualified (private)
// pointer, publishes it with a sharing cast, and only ever reads it in
// dynamic mode: no dynamic-mode write exists anywhere, so the shadow
// writer flag can never be set and the reads are unfailable.
const phaseDisjointSrc = `
void *reader(void *d) {
	char dynamic *p = d;
	int s = 0;
	for (int i = 0; i < 16; i++) {
		s += p[i];
	}
	return NULL;
}

int main(void) {
	char *b = malloc(16);
	for (int i = 0; i < 16; i++) {
		b[i] = i;
	}
	char dynamic *p = SCAST(char dynamic *, b);
	int t1 = spawn(reader, p);
	int t2 = spawn(reader, p);
	join(t1);
	join(t2);
	return 0;
}
`

func TestRulePhaseDisjoint(t *testing.T) {
	rep := analyze(t, phaseDisjointSrc, absint.DefaultOptions())
	if got := reasons(rep)["phase-disjoint"]; got < 1 {
		t.Fatalf("phase-disjoint proofs = %d, want >= 1; proofs: %v", got, rep.Proofs())
	}
}

// ticketSrc is the interval-bounded shape: each worker draws a ticket t
// from a lock-protected counter and writes the two cells at buf[2t] and
// buf[2t+1] — granule-disjoint regions per draw, provable within the
// worker itself.
const ticketSrc = `
struct pool {
	mutex *m;
	int locked(m) next;
	char dynamic *buf;
};

void *worker(void *d) {
	struct pool dynamic *p = d;
	while (1) {
		mutexLock(p->m);
		int t = p->next;
		if (t >= 32) { mutexUnlock(p->m); return NULL; }
		p->next = t + 1;
		mutexUnlock(p->m);
		char dynamic *b = p->buf;
		b[t * 2] = 1;
		b[t * 2 + 1] = 2;
	}
	return NULL;
}

int main(void) {
	struct pool *p = malloc(sizeof(struct pool));
	p->m = mutexNew();
	mutexLock(p->m);
	p->next = 0;
	mutexUnlock(p->m);
	char *raw = malloc(64);
	p->buf = SCAST(char dynamic *, raw);
	struct pool dynamic *pd = SCAST(struct pool dynamic *, p);
	int t1 = spawn(worker, pd);
	int t2 = spawn(worker, pd);
	join(t1);
	join(t2);
	return 0;
}
`

func TestRuleIntervalBounded(t *testing.T) {
	rep := analyze(t, ticketSrc, absint.DefaultOptions())
	if got := reasons(rep)["interval-bounded"]; got < 1 {
		t.Fatalf("interval-bounded proofs = %d, want >= 1; proofs: %v", got, rep.Proofs())
	}
	// The engine tier carries the proof; with intervals off it must go.
	rep = analyze(t, ticketSrc, absint.Options{MHP: true})
	if got := reasons(rep)["interval-bounded"]; got != 0 {
		t.Fatalf("interval-bounded proofs with Intervals off = %d, want 0", got)
	}
}

func TestRuleSummarySafeOnAget(t *testing.T) {
	src := bench.AgetSource(bench.Quick)
	rep := analyze(t, src, absint.DefaultOptions())
	if got := reasons(rep)["summary-safe"]; got < 1 {
		t.Fatalf("summary-safe proofs = %d, want >= 1; proofs: %v", got, rep.Proofs())
	}
	// The cross-function write is the one would-be finding; it must be
	// reported as resolved, not left as a may race.
	if len(rep.Resolved) == 0 {
		t.Fatalf("no resolved findings; findings: %v", rep.Findings)
	}
	found := false
	for _, r := range rep.Resolved {
		if strings.Contains(r.Reasons, "summary-safe") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no resolved entry credits summary-safe: %v", rep.Resolved)
	}
	// Summaries off: the same site must fall back to a live may finding.
	rep = analyze(t, src, absint.Options{MHP: true, Intervals: true})
	if got := reasons(rep)["summary-safe"]; got != 0 {
		t.Fatalf("summary-safe proofs with Summaries off = %d, want 0", got)
	}
}

// TestAbsintDisabledDischargesNothing pins the zero-options baseline: the
// lockset tier alone must not claim any absint provenance.
func TestAbsintDisabledDischargesNothing(t *testing.T) {
	for _, src := range []string{preSpawnSrc, postJoinSrc, phaseDisjointSrc, ticketSrc} {
		rep := analyze(t, src, absint.Options{})
		if len(rep.Proofs()) != 0 {
			t.Fatalf("proofs with absint disabled: %v", rep.Proofs())
		}
		if rep.Stats.SafeAbsint != 0 {
			t.Fatalf("SafeAbsint = %d with absint disabled", rep.Stats.SafeAbsint)
		}
	}
}

// TestExplainProofChain pins the three-tier explanation for an
// absint-discharged site and the no-verdict fallback.
func TestExplainProofChain(t *testing.T) {
	rep := analyze(t, preSpawnSrc, absint.DefaultOptions())
	var site string
	for s := range rep.Proofs() {
		site = s
		break
	}
	if site == "" {
		t.Fatal("no absint-discharged site to explain")
	}
	out := rep.Explain(site)
	for _, want := range []string{"tier 1 lockset", "tier 2 points-to", "tier 3 absint", "pre-spawn"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain(%s) missing %q:\n%s", site, want, out)
		}
	}
	out = rep.Explain("prog.shc:999:1")
	if !strings.Contains(out, "no static verdict") {
		t.Fatalf("unknown site explanation: %s", out)
	}
}
