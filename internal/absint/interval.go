// The interval engine: a fixpoint abstract interpreter over one function's
// flat linear code (ir.FlatFunc). The domain is relational-lite: every
// location (VM register, frame slot, or virtual seed cell) holds an affine
// form over symbols plus a constant interval, a side set of difference
// constraints (form <= bound) harvested from conditional branches, and
// per-register comparison provenance so branch edges can be refined.
// Widening at back-edge targets plus a hard step budget guarantee
// termination on hostile loop bounds.
//
// Symbols come in three flavors:
//
//   - the frame base (symFrame), so frame-slot addresses stay recognizable;
//   - context symbols (ctxSym), bound by the caller to parameter slots or
//     to seeded check sites (a stable-field load, a certified ticket read);
//   - location symbols (one per register/slot/seed cell), the canonical
//     handles constraints refer to.
//
// Soundness discipline: a location symbol means "the current value of that
// location". Every write to a location therefore rewrites or flattens all
// forms, constraints, and comparison records that mention its symbol,
// substituting the pre-write value where it is exact and widening to the
// pre-write interval otherwise.
package absint

import (
	"math"
	"sort"

	"repro/internal/ir"
	"repro/internal/token"
)

const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
)

// Sym identifies one symbol in an affine form.
type Sym int32

const (
	symFrame Sym = -1      // the function's frame base address
	symSlot0 Sym = 1 << 20 // location symbols of frame slots
	symSeed0 Sym = 1 << 22 // location symbols of virtual seed cells
	symCtx0  Sym = 1 << 24 // pure context symbols (never a location)
)

func symReg(r int32) Sym { return Sym(r) }
func symSlot(s int) Sym  { return symSlot0 + Sym(s) }
func symSeed(k int) Sym  { return symSeed0 + Sym(k) }

// CtxSym returns the k-th pure context symbol.
func CtxSym(k int) Sym { return symCtx0 + Sym(k) }

// form is an affine combination of symbols (coefficient map, no constant).
type form map[Sym]int64

func (f form) clone() form {
	if f == nil {
		return nil
	}
	out := make(form, len(f))
	for s, c := range f {
		out[s] = c
	}
	return out
}

func (f form) equal(g form) bool {
	if len(f) != len(g) {
		return false
	}
	for s, c := range f {
		if g[s] != c {
			return false
		}
	}
	return true
}

// key renders a canonical string for map/sort identity.
func (f form) key() string {
	syms := make([]Sym, 0, len(f))
	for s := range f {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	b := make([]byte, 0, 16*len(syms))
	for _, s := range syms {
		b = appendInt(b, int64(s))
		b = append(b, '*')
		b = appendInt(b, f[s])
		b = append(b, ';')
	}
	return string(b)
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	start := len(b)
	for {
		b = append(b, byte('0'+v%10))
		v /= 10
		if v == 0 {
			break
		}
	}
	for i, j := start, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return b
}

// ---------------------------------------------------------------------------
// saturating interval arithmetic

// addLo adds two lower bounds: -inf is absorbing, overflow saturates down.
func addLo(a, b int64) int64 {
	if a == negInf || b == negInf {
		return negInf
	}
	if a == posInf || b == posInf {
		return posInf
	}
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return negInf
	}
	return s
}

// addHi adds two upper bounds: +inf is absorbing, overflow saturates up.
func addHi(a, b int64) int64 {
	if a == posInf || b == posInf {
		return posInf
	}
	if a == negInf || b == negInf {
		return negInf
	}
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return posInf
	}
	return s
}

// mulBound multiplies one interval bound by a finite scalar, keeping the
// infinity sign right and saturating on overflow.
func mulBound(x, c int64) int64 {
	if c == 0 {
		return 0
	}
	if x == negInf {
		if c > 0 {
			return negInf
		}
		return posInf
	}
	if x == posInf {
		if c > 0 {
			return posInf
		}
		return negInf
	}
	p := x * c
	if x != 0 && (p/x != c || (x == -1 && c == negInf)) {
		if (x > 0) == (c > 0) {
			return posInf
		}
		return negInf
	}
	return p
}

// scaleInterval multiplies [lo,hi] by a scalar, swapping ends when negative.
func scaleInterval(lo, hi, c int64) (int64, int64) {
	a, b := mulBound(lo, c), mulBound(hi, c)
	if c < 0 {
		a, b = b, a
	}
	return a, b
}

// ---------------------------------------------------------------------------
// abstract values

// val is one abstract value: the sum of an affine form and a constant drawn
// from [lo, hi]. A nil form is a plain interval; lo == hi makes the value
// exact relative to its symbols.
type val struct {
	f      form
	lo, hi int64
}

func top() val            { return val{lo: negInf, hi: posInf} }
func cst(c int64) val     { return val{lo: c, hi: c} }
func (v val) exact() bool { return v.lo == v.hi }
func (v val) isTop() bool { return len(v.f) == 0 && v.lo == negInf && v.hi == posInf }

func symVal(s Sym) val { return val{f: form{s: 1}} }

func (v val) clone() val { return val{f: v.f.clone(), lo: v.lo, hi: v.hi} }

func (v val) equal(w val) bool {
	return v.lo == w.lo && v.hi == w.hi && v.f.equal(w.f)
}

func (v *val) normalize() {
	for s, c := range v.f {
		if c == 0 {
			delete(v.f, s)
		}
	}
	if len(v.f) == 0 {
		v.f = nil
	}
}

func addVal(a, b val) val {
	out := val{f: a.f.clone(), lo: addLo(a.lo, b.lo), hi: addHi(a.hi, b.hi)}
	if len(b.f) > 0 {
		if out.f == nil {
			out.f = make(form, len(b.f))
		}
		for s, c := range b.f {
			out.f[s] += c
		}
	}
	out.normalize()
	return out
}

func negVal(a val) val {
	out := val{lo: mulBound(a.hi, -1), hi: mulBound(a.lo, -1)}
	if len(a.f) > 0 {
		out.f = make(form, len(a.f))
		for s, c := range a.f {
			out.f[s] = -c
		}
	}
	return out
}

func subVal(a, b val) val { return addVal(a, negVal(b)) }

// scaleVal multiplies by a finite scalar; coefficient overflow gives top.
func scaleVal(a val, c int64) val {
	if c == 0 {
		return cst(0)
	}
	out := val{}
	out.lo, out.hi = scaleInterval(a.lo, a.hi, c)
	if len(a.f) > 0 {
		out.f = make(form, len(a.f))
		for s, k := range a.f {
			p := k * c
			if k != 0 && p/k != c {
				return top()
			}
			out.f[s] = p
		}
	}
	out.normalize()
	return out
}

// substitute replaces sym s in v with value r (v's coefficient on s times r
// is folded into the remaining form/interval).
func substitute(v val, s Sym, r val) val {
	c := v.f[s]
	if c == 0 {
		return v
	}
	rest := val{f: v.f.clone(), lo: v.lo, hi: v.hi}
	delete(rest.f, s)
	rest.normalize()
	return addVal(rest, scaleVal(r, c))
}

// ---------------------------------------------------------------------------
// machine state

type constraint struct {
	f form // sum(f) <= b on this path
	b int64
}

const maxConstraints = 48

// cmpRec remembers that a register holds the boolean result of a
// comparison, so branch edges can refine with the comparison's operands.
// orZero marks a join where the other path held the literal 0: "reg != 0"
// still implies the comparison, "reg == 0" implies nothing.
type cmpRec struct {
	op     ir.Op
	l, r   val
	orZero bool
}

func (c cmpRec) equal(d cmpRec) bool {
	return c.op == d.op && c.l.equal(d.l) && c.r.equal(d.r)
}

type aState struct {
	vals []val
	cons []constraint
	cmps map[int32]cmpRec
}

func (st *aState) clone() *aState {
	out := &aState{
		vals: make([]val, len(st.vals)),
		cons: make([]constraint, len(st.cons)),
		cmps: make(map[int32]cmpRec, len(st.cmps)),
	}
	for i, v := range st.vals {
		out.vals[i] = v.clone()
	}
	for i, c := range st.cons {
		out.cons[i] = constraint{f: c.f.clone(), b: c.b}
	}
	for r, c := range st.cmps {
		out.cmps[r] = cmpRec{op: c.op, l: c.l.clone(), r: c.r.clone(), orZero: c.orZero}
	}
	return out
}

func (st *aState) equal(o *aState) bool {
	if len(st.vals) != len(o.vals) || len(st.cons) != len(o.cons) || len(st.cmps) != len(o.cmps) {
		return false
	}
	for i := range st.vals {
		if !st.vals[i].equal(o.vals[i]) {
			return false
		}
	}
	am, bm := st.conMap(), o.conMap()
	for k, b := range am {
		ob, ok := bm[k]
		if !ok || ob != b {
			return false
		}
	}
	for r, c := range st.cmps {
		d, ok := o.cmps[r]
		if !ok || !c.equal(d) || c.orZero != d.orZero {
			return false
		}
	}
	return true
}

func (st *aState) conMap() map[string]int64 {
	m := make(map[string]int64, len(st.cons))
	for _, c := range st.cons {
		k := c.f.key()
		if b, ok := m[k]; !ok || c.b < b {
			m[k] = c.b
		}
	}
	return m
}

func (st *aState) addConstraint(f form, b int64) {
	if len(f) == 0 {
		return
	}
	for i := range st.cons {
		if st.cons[i].f.equal(f) {
			if b < st.cons[i].b {
				st.cons[i].b = b
			}
			return
		}
	}
	if len(st.cons) < maxConstraints {
		st.cons = append(st.cons, constraint{f: f.clone(), b: b})
	}
}

// ---------------------------------------------------------------------------
// the engine

// engine runs the fixpoint over one FlatFunc.
type engine struct {
	ff   *ir.FlatFunc
	prog *ir.Program

	numRegs   int
	frameSize int
	numSeeds  int

	ctx      map[int]val   // frame slot -> initial value (parameter bindings)
	tauSeeds map[int32]int // check index -> seed cell: fresh value per load
	piSeeds  map[int32]Sym // check index -> pure ctx sym: stable value per load

	budget int
	steps  int
	gaveUp bool

	states []*aState
}

func newEngine(prog *ir.Program, fnIdx int, ctx map[int]val, tauSeeds map[int32]int, piSeeds map[int32]Sym, numSeeds, budget int) *engine {
	ff := prog.Flat.Funcs[fnIdx]
	return &engine{
		ff:        ff,
		prog:      prog,
		numRegs:   ff.NumRegs,
		frameSize: prog.Funcs[fnIdx].FrameSize,
		numSeeds:  numSeeds,
		ctx:       ctx,
		tauSeeds:  tauSeeds,
		piSeeds:   piSeeds,
		budget:    budget,
	}
}

func (e *engine) numLocs() int { return e.numRegs + e.frameSize + e.numSeeds }

func (e *engine) locSym(loc int) Sym {
	switch {
	case loc < e.numRegs:
		return symReg(int32(loc))
	case loc < e.numRegs+e.frameSize:
		return symSlot(loc - e.numRegs)
	default:
		return symSeed(loc - e.numRegs - e.frameSize)
	}
}

func (e *engine) symLoc(s Sym) (int, bool) {
	switch {
	case s >= 0 && int(s) < e.numRegs:
		return int(s), true
	case s >= symSlot0 && int(s-symSlot0) < e.frameSize:
		return e.numRegs + int(s-symSlot0), true
	case s >= symSeed0 && s < symCtx0 && int(s-symSeed0) < e.numSeeds:
		return e.numRegs + e.frameSize + int(s-symSeed0), true
	}
	return 0, false
}

func (e *engine) initState() *aState {
	st := &aState{vals: make([]val, e.numLocs()), cmps: make(map[int32]cmpRec)}
	for i := range st.vals {
		st.vals[i] = top()
	}
	for slot, v := range e.ctx {
		if slot >= 0 && slot < e.frameSize {
			st.vals[e.numRegs+slot] = v.clone()
		}
	}
	return st
}

// read yields the operand value of a location, always as a reference to the
// location's own symbol. Referencing instead of substituting keeps forms
// syntactically stable across loop iterations — a loop-carried register is
// an exact constant on the first pass and an interval afterwards, and
// substituting eagerly would make dependent forms differ at the loop-head
// join, collapsing them to plain intervals. Exact values are recovered at
// use sites through resolveExact; overwrites substitute the old value via
// the kill discipline in write.
func (e *engine) read(st *aState, loc int) val {
	return symVal(e.locSym(loc))
}

func (e *engine) readReg(st *aState, r int32) val { return e.read(st, int(r)) }

// resolveExact substitutes location symbols whose current value is exact,
// normalizing a form to context symbols, the frame base, and inexact
// locations only.
func (e *engine) resolveExact(st *aState, v val) val {
	for iter := 0; iter < 64; iter++ {
		done := true
		for s := range v.f {
			loc, ok := e.symLoc(s)
			if !ok {
				continue
			}
			lv := st.vals[loc]
			if lv.exact() && lv.f[s] == 0 {
				v = substitute(v, s, lv)
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	return v
}

// resolveForms substitutes location symbols whose current value is exact
// and structural — a non-empty affine form — leaving symbols with plain
// constant values referenced. Temporary-register chains fold down to stable
// base symbols (frame slots, context, seeds) while loop-carried locations,
// whose values are constants on the first fixpoint pass and intervals
// later, keep their iteration-stable symbolic reference.
func (e *engine) resolveForms(st *aState, v val) val {
	for iter := 0; iter < 64; iter++ {
		done := true
		for s := range v.f {
			loc, ok := e.symLoc(s)
			if !ok {
				continue
			}
			lv := st.vals[loc]
			if lv.exact() && len(lv.f) > 0 && lv.f[s] == 0 {
				v = substitute(v, s, lv)
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	return v
}

// flatten evaluates v to a plain interval: the frame base and context
// symbols are unbounded; location symbols recurse into their values.
func (e *engine) flatten(st *aState, v val, depth int) (int64, int64) {
	lo, hi := v.lo, v.hi
	for s, c := range v.f {
		var sl, sh int64 = negInf, posInf
		if loc, ok := e.symLoc(s); ok && depth > 0 {
			lv := st.vals[loc]
			if lv.f[s] == 0 { // guard against self-reference
				sl, sh = e.flatten(st, lv, depth-1)
			}
		}
		a, b := scaleInterval(sl, sh, c)
		lo, hi = addLo(lo, a), addHi(hi, b)
	}
	return lo, hi
}

// frameReach reports whether v's form can transitively reach the frame
// base symbol — if so, a store through it may alias any frame slot.
func (e *engine) frameReach(st *aState, v val, depth int) bool {
	if v.f[symFrame] != 0 {
		return true
	}
	if depth == 0 {
		return false
	}
	for s := range v.f {
		if loc, ok := e.symLoc(s); ok {
			lv := st.vals[loc]
			if lv.f[s] == 0 && e.frameReach(st, lv, depth-1) {
				return true
			}
		}
	}
	return false
}

// write stores v into loc, maintaining the symbol discipline: forms,
// constraints, and comparison records that mention the location's old
// symbol are rewritten with the old value when exact, or widened to its
// interval otherwise.
func (e *engine) write(st *aState, loc int, v val) {
	s := e.locSym(loc)
	old := st.vals[loc]
	if v.f[s] != 0 {
		v = substitute(v, s, old)
	}
	for m := range st.vals {
		if m == loc || st.vals[m].f[s] == 0 {
			continue
		}
		nv := substitute(st.vals[m], s, old)
		if nv.f[e.locSym(m)] != 0 { // defensive: never allow self-mention
			lo, hi := e.flatten(st, nv, 8)
			nv = val{lo: lo, hi: hi}
		}
		st.vals[m] = nv
	}
	if len(st.cons) > 0 {
		kept := st.cons[:0]
		for _, c := range st.cons {
			k := c.f[s]
			if k == 0 {
				kept = append(kept, c)
				continue
			}
			if old.exact() && old.f[s] == 0 {
				// c.f contains k*s; s == old.f + old.lo exactly.
				nf := c.f.clone()
				delete(nf, s)
				for os, oc := range old.f {
					nf[os] += oc * k
				}
				for os, oc := range nf {
					if oc == 0 {
						delete(nf, os)
					}
				}
				nb := addHi(c.b, mulBound(old.lo, -k))
				if nb != posInf && len(nf) > 0 {
					kept = append(kept, constraint{f: nf, b: nb})
				}
				continue
			}
			// Weaken: rest + k*s <= b and k*s >= min(k*lo, k*hi).
			olo, ohi := e.flatten(st, old, 8)
			a, _ := scaleInterval(olo, ohi, k)
			if a == negInf {
				continue
			}
			nf := c.f.clone()
			delete(nf, s)
			if len(nf) == 0 {
				continue
			}
			kept = append(kept, constraint{f: nf, b: addHi(c.b, -a)})
		}
		st.cons = kept
	}
	for r, c := range st.cmps {
		if c.l.f[s] != 0 || c.r.f[s] != 0 {
			if old.exact() && old.f[s] == 0 {
				c.l = substitute(c.l, s, old)
				c.r = substitute(c.r, s, old)
				st.cmps[r] = c
			} else {
				delete(st.cmps, r)
			}
		}
	}
	if loc < e.numRegs {
		delete(st.cmps, int32(loc))
	}
	v.normalize()
	st.vals[loc] = v
}

func (e *engine) writeReg(st *aState, r int32, v val) { e.write(st, int(r), v) }

// havocSlots forgets everything about frame memory (a store through an
// unresolved frame-derived or unknown pointer may have hit any slot).
func (e *engine) havocSlots(st *aState) {
	for s := 0; s < e.frameSize; s++ {
		e.write(st, e.numRegs+s, top())
	}
}

// slotOf decodes a resolved address as a frame slot.
func (e *engine) slotOf(v val) (int, bool) {
	if len(v.f) == 1 && v.f[symFrame] == 1 && v.exact() && v.lo >= 0 && v.lo < int64(e.frameSize) {
		return int(v.lo), true
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// branch refinement

// refine narrows st for the edge where register r is zero (truth=false) or
// nonzero (truth=true). Returns false when the edge is infeasible.
func (e *engine) refine(st *aState, r int32, truth bool) bool {
	v := st.vals[r]
	if !truth {
		// r == 0: meet the register's interval with [0,0].
		if len(v.f) == 0 {
			if v.lo > 0 || v.hi < 0 {
				return false
			}
			st.vals[r] = cst(0)
		}
	} else if len(v.f) == 0 && v.lo == 0 && v.hi == 0 {
		return false // r != 0 is impossible
	}
	c, ok := st.cmps[r]
	if !ok {
		return true
	}
	if !truth {
		// Consume the record on the zero edge: r == 0 pins the register to
		// a constant, and a stale record would defeat the orZero join rule
		// that recovers short-circuit conjuncts.
		delete(st.cmps, r)
		if c.orZero {
			return true
		}
	}
	return e.applyCmp(st, c, truth)
}

// applyCmp adds the difference constraints implied by cmp being truth. The
// operands are resolved against the current state first: records hold
// symbolic references, and resolution folds chained exact registers so the
// constraint lands on the same base symbols check residuals resolve to.
func (e *engine) applyCmp(st *aState, c cmpRec, truth bool) bool {
	d := subVal(e.resolveExact(st, c.l), e.resolveExact(st, c.r)) // l - r
	type rel struct {
		neg bool  // constrain -d instead of d
		k   int64 // ... <= k
	}
	var rels []rel
	switch c.op {
	case ir.FLt:
		if truth {
			rels = []rel{{false, -1}} // l - r <= -1
		} else {
			rels = []rel{{true, 0}} // r - l <= 0
		}
	case ir.FLe:
		if truth {
			rels = []rel{{false, 0}}
		} else {
			rels = []rel{{true, -1}}
		}
	case ir.FGt:
		if truth {
			rels = []rel{{true, -1}}
		} else {
			rels = []rel{{false, 0}}
		}
	case ir.FGe:
		if truth {
			rels = []rel{{true, 0}}
		} else {
			rels = []rel{{false, -1}}
		}
	case ir.FEq:
		if truth {
			rels = []rel{{false, 0}, {true, 0}}
		}
	case ir.FNe:
		if !truth {
			rels = []rel{{false, 0}, {true, 0}}
		}
	}
	for _, rl := range rels {
		dv := d
		if rl.neg {
			dv = negVal(d)
		}
		if !e.applyLe(st, dv, rl.k) {
			return false
		}
	}
	return true
}

// applyLe records value(dv) <= k: infeasibility check, single-variable
// interval tightening, or a stored constraint.
func (e *engine) applyLe(st *aState, dv val, k int64) bool {
	if len(dv.f) == 0 {
		return dv.lo <= k
	}
	if dv.lo == negInf {
		return true // nothing to conclude about the form
	}
	b := k - dv.lo // form <= b
	if len(dv.f) == 1 {
		for s, c := range dv.f {
			loc, ok := e.symLoc(s)
			if !ok {
				st.addConstraint(dv.f, b)
				return true
			}
			lv := st.vals[loc]
			if len(lv.f) == 0 {
				// c*s <= b: tighten the location's interval directly.
				if c > 0 {
					nb := floorDiv(b, c)
					if lv.lo != negInf && lv.lo > nb {
						return false
					}
					if nb < lv.hi {
						lv.hi = nb
						st.vals[loc] = lv
					}
				} else {
					nb := ceilDiv(b, c)
					if lv.hi != posInf && lv.hi < nb {
						return false
					}
					if nb > lv.lo {
						lv.lo = nb
						st.vals[loc] = lv
					}
				}
				return true
			}
			st.addConstraint(dv.f, b)
			return true
		}
	}
	st.addConstraint(dv.f, b)
	return true
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// ---------------------------------------------------------------------------
// join and widening

func joinState(e *engine, sa, sb *aState) *aState {
	out := &aState{vals: make([]val, len(sa.vals)), cmps: make(map[int32]cmpRec)}
	for i := range sa.vals {
		va, vb := sa.vals[i], sb.vals[i]
		if va.f.equal(vb.f) {
			lo, hi := va.lo, va.hi
			if vb.lo < lo {
				lo = vb.lo
			}
			if vb.hi > hi {
				hi = vb.hi
			}
			out.vals[i] = val{f: va.f.clone(), lo: lo, hi: hi}
			continue
		}
		alo, ahi := e.flatten(sa, va, 8)
		blo, bhi := e.flatten(sb, vb, 8)
		if blo < alo {
			alo = blo
		}
		if bhi > ahi {
			ahi = bhi
		}
		out.vals[i] = val{lo: alo, hi: ahi}
	}
	// A constraint survives the join if both sides admit it: with the same
	// form on the other side the bounds max; a constraint missing on one
	// side can still be recovered when that side's intervals imply some
	// finite bound — on the first loop pass the variables are exact
	// constants and the guard refinement never stores the constraint, yet
	// the plain evaluation proves a tighter one.
	bm := sb.conMap()
	am := sa.conMap()
	joinCons := func(from, other *aState, cons []constraint, om map[string]int64, both bool) {
		for _, c := range cons {
			if ob, ok := om[c.f.key()]; ok {
				if !both {
					continue // handled from the other side's loop
				}
				b := c.b
				if ob > b {
					b = ob
				}
				out.addConstraint(c.f, b)
				continue
			}
			ohi := e.flatForm(other, c.f, true)
			if ohi == posInf {
				continue
			}
			b := c.b
			if ohi > b {
				b = ohi
			}
			out.addConstraint(c.f, b)
		}
	}
	joinCons(sa, sb, sa.cons, bm, true)
	joinCons(sb, sa, sb.cons, am, false)
	for r, ca := range sa.cmps {
		cb, ok := sb.cmps[r]
		if ok && ca.equal(cb) {
			ca.orZero = ca.orZero || cb.orZero
			out.cmps[r] = ca
			continue
		}
		if !ok {
			// The other path holds the literal 0: keep the record guarded.
			vb := sb.vals[r]
			if len(vb.f) == 0 && vb.lo == 0 && vb.hi == 0 {
				ca.orZero = true
				out.cmps[r] = ca
			}
		}
	}
	for r, cb := range sb.cmps {
		if _, ok := sa.cmps[r]; ok {
			continue
		}
		va := sa.vals[r]
		if len(va.f) == 0 && va.lo == 0 && va.hi == 0 {
			cb.orZero = true
			out.cmps[r] = cb
		}
	}
	return out
}

// widenState accelerates convergence at a loop head: unstable bounds go to
// infinity, changed forms to top, constraints only survive unweakened.
func widenState(e *engine, old, next *aState) *aState {
	out := &aState{vals: make([]val, len(old.vals)), cmps: make(map[int32]cmpRec)}
	for i := range old.vals {
		vo, vn := old.vals[i], next.vals[i]
		if !vo.f.equal(vn.f) {
			out.vals[i] = top()
			continue
		}
		lo, hi := vn.lo, vn.hi
		if vn.lo < vo.lo {
			lo = negInf
		}
		if vn.hi > vo.hi {
			hi = posInf
		}
		out.vals[i] = val{f: vn.f.clone(), lo: lo, hi: hi}
	}
	om := old.conMap()
	for _, c := range next.cons {
		if ob, ok := om[c.f.key()]; ok && c.b <= ob {
			out.addConstraint(c.f, c.b)
		}
	}
	for r, cn := range next.cmps {
		if co, ok := old.cmps[r]; ok && cn.equal(co) {
			out.cmps[r] = cn
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// the fixpoint loop

// backEdgeTargets marks pcs that are targets of a backward jump — the
// widening points.
func backEdgeTargets(code []ir.Instr) []bool {
	w := make([]bool, len(code)+1)
	for pc, in := range code {
		switch in.Op {
		case ir.FJmp:
			if int(in.A) <= pc {
				w[in.A] = true
			}
		case ir.FJmpZ, ir.FJmpNZ, ir.FJmpEqImm:
			if int(in.B) <= pc {
				w[in.B] = true
			}
		}
	}
	return w
}

const widenDelay = 2

// run executes the fixpoint. After it returns, states[pc] is the abstract
// state at the entry of each reachable instruction (nil if unreachable or
// the budget ran out).
func (e *engine) run() {
	code := e.ff.Code
	e.states = make([]*aState, len(code))
	widen := backEdgeTargets(code)
	mergeCnt := make([]int, len(code))
	var work []int
	inWork := make([]bool, len(code))
	push := func(pc int) {
		if pc >= 0 && pc < len(code) && !inWork[pc] {
			work = append(work, pc)
			inWork[pc] = true
		}
	}
	e.states[0] = e.initState()
	push(0)
	merge := func(pc int, ns *aState) {
		if pc < 0 || pc >= len(code) {
			return
		}
		if e.states[pc] == nil {
			e.states[pc] = ns
			push(pc)
			return
		}
		j := joinState(e, e.states[pc], ns)
		if widen[pc] {
			mergeCnt[pc]++
			if mergeCnt[pc] > widenDelay {
				j = widenState(e, e.states[pc], j)
			}
		}
		if !j.equal(e.states[pc]) {
			e.states[pc] = j
			push(pc)
		}
	}
	for len(work) > 0 {
		if e.steps >= e.budget {
			e.gaveUp = true
			return
		}
		e.steps++
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[pc] = false
		st := e.states[pc].clone()
		e.step(pc, st, merge)
	}
}

// step interprets one instruction, merging into its successors.
func (e *engine) step(pc int, st *aState, merge func(int, *aState)) {
	in := e.ff.Code[pc]
	next := func() { merge(pc+1, st) }
	switch in.Op {
	case ir.FConst:
		e.writeReg(st, in.A, cst(in.Imm))
		next()
	case ir.FStr, ir.FFunc:
		e.writeReg(st, in.A, top())
		next()
	case ir.FFrame:
		e.writeReg(st, in.A, val{f: form{symFrame: 1}, lo: int64(in.B), hi: int64(in.B)})
		next()
	case ir.FMove:
		v := e.readReg(st, in.B)
		c, hasCmp := st.cmps[in.B]
		e.writeReg(st, in.A, v)
		if hasCmp {
			if c2, still := st.cmps[in.B]; still && c2.equal(c) {
				st.cmps[in.A] = c2
			}
		}
		next()
	case ir.FSetNZ:
		c, hasCmp := st.cmps[in.B]
		e.writeReg(st, in.A, val{lo: 0, hi: 1})
		if hasCmp {
			if c2, still := st.cmps[in.B]; still && c2.equal(c) {
				st.cmps[in.A] = c2
			}
		}
		next()
	case ir.FAdd:
		e.binArith(st, in, func(a, b val) val { return addVal(a, b) })
		next()
	case ir.FSub:
		e.binArith(st, in, func(a, b val) val { return subVal(a, b) })
		next()
	case ir.FMul:
		e.binArith(st, in, e.mulVal(st))
		next()
	case ir.FDiv, ir.FAnd, ir.FOr, ir.FXor, ir.FShl, ir.FShr, ir.FBitNot:
		e.writeReg(st, in.A, top())
		next()
	case ir.FMod:
		b := e.resolveExact(st, e.readReg(st, in.C))
		out := top()
		if len(b.f) == 0 && b.exact() && b.lo > 0 {
			m := b.lo
			a := e.resolveExact(st, e.readReg(st, in.B))
			alo, _ := e.flatten(st, a, 8)
			if alo >= 0 {
				out = val{lo: 0, hi: m - 1}
			} else {
				out = val{lo: -(m - 1), hi: m - 1}
			}
		}
		e.writeReg(st, in.A, out)
		next()
	case ir.FNeg:
		e.writeReg(st, in.A, negVal(e.readReg(st, in.B)))
		next()
	case ir.FNot:
		e.writeReg(st, in.A, val{lo: 0, hi: 1})
		next()
	case ir.FEq, ir.FNe, ir.FLt, ir.FLe, ir.FGt, ir.FGe:
		// Record the comparison against stable symbols. Chains through
		// short-lived temporaries are folded structurally (a register that
		// holds "the value loaded from slot 3" becomes a reference to slot
		// 3 itself) so the record survives path joins that destroy the
		// temporary; plain constants stay referenced, because a
		// loop-carried register is an exact constant on the first pass and
		// folding it would make the record differ across iterations and
		// die at the loop-head join. Remaining resolution waits until
		// refinement. The destination often reuses an operand register; a
		// record left referencing the clobbered register would compare
		// against the fresh [0,1] result, so its old value is substituted
		// and the record dropped if the reference cannot be removed.
		l := e.resolveForms(st, e.readReg(st, in.B))
		r := e.resolveForms(st, e.readReg(st, in.C))
		sA := symReg(in.A)
		old := st.vals[in.A]
		if l.f[sA] != 0 {
			l = substitute(l, sA, old)
		}
		if r.f[sA] != 0 {
			r = substitute(r, sA, old)
		}
		e.writeReg(st, in.A, val{lo: 0, hi: 1})
		if l.f[sA] == 0 && r.f[sA] == 0 {
			st.cmps[in.A] = cmpRec{op: in.Op, l: l, r: r}
		}
		next()
	case ir.FJmp:
		merge(int(in.A), st)
	case ir.FJmpZ:
		taken := st.clone()
		if e.refine(taken, in.A, false) {
			merge(int(in.B), taken)
		}
		if e.refine(st, in.A, true) {
			next()
		}
	case ir.FJmpNZ:
		taken := st.clone()
		if e.refine(taken, in.A, true) {
			merge(int(in.B), taken)
		}
		if e.refine(st, in.A, false) {
			next()
		}
	case ir.FJmpEqImm:
		taken := st.clone()
		v := taken.vals[in.A]
		feasible := true
		if len(v.f) == 0 {
			if v.lo > in.Imm || v.hi < in.Imm {
				feasible = false
			} else {
				taken.vals[in.A] = cst(in.Imm)
			}
		}
		if feasible {
			merge(int(in.B), taken)
		}
		next()
	case ir.FYield, ir.FBarrier, ir.FKill, ir.FNop, ir.FChkElided,
		ir.FChkLock, ir.FChkRead, ir.FChkWrite, ir.FCString:
		next()
	case ir.FLoad, ir.FLoadAcc:
		e.loadThrough(st, in.A, in.B, -1)
		next()
	case ir.FLoadChk:
		e.loadThrough(st, in.A, in.B, in.C)
		next()
	case ir.FStore, ir.FStoreAcc, ir.FStoreChk:
		e.storeThrough(st, in.A, in.B)
		next()
	case ir.FScast:
		addr := e.resolveExact(st, e.readReg(st, in.B))
		if slot, ok := e.slotOf(addr); ok {
			old := e.read(st, e.numRegs+slot)
			e.write(st, e.numRegs+slot, cst(0))
			e.writeReg(st, in.A, old)
		} else {
			if e.frameReach(st, addr, 8) || addr.isTop() {
				e.havocSlots(st)
			}
			e.writeReg(st, in.A, top())
		}
		next()
	case ir.FCall:
		ci := e.ff.Calls[in.B]
		for _, ar := range ci.Args {
			if e.frameReach(st, e.readReg(st, ar), 8) {
				e.havocSlots(st)
				break
			}
		}
		e.writeReg(st, in.A, top())
		next()
	case ir.FBuiltin:
		bi := e.ff.Builtins[in.B]
		for _, ar := range bi.Args {
			if e.frameReach(st, e.readReg(st, ar), 8) {
				e.havocSlots(st)
				break
			}
		}
		e.writeReg(st, in.A, top())
		next()
	case ir.FRet:
		// terminal
	default:
		// Unknown opcode: be safe, lose everything.
		e.havocSlots(st)
		for r := 0; r < e.numRegs; r++ {
			e.write(st, r, top())
		}
		next()
	}
}

func (e *engine) binArith(st *aState, in ir.Instr, op func(a, b val) val) {
	a := e.readReg(st, in.B)
	b := e.readReg(st, in.C)
	e.writeReg(st, in.A, op(a, b))
}

// mulVal handles multiplication: a constant side scales the other; two
// plain finite intervals multiply; anything else is top.
func (e *engine) mulVal(st *aState) func(a, b val) val {
	return func(a, b val) val {
		ra := e.resolveExact(st, a)
		rb := e.resolveExact(st, b)
		if len(ra.f) == 0 && ra.exact() {
			return scaleVal(rb, ra.lo)
		}
		if len(rb.f) == 0 && rb.exact() {
			return scaleVal(ra, rb.lo)
		}
		if len(ra.f) == 0 && len(rb.f) == 0 &&
			ra.lo != negInf && ra.hi != posInf && rb.lo != negInf && rb.hi != posInf {
			c1, c2 := scaleInterval(ra.lo, ra.hi, rb.lo)
			c3, c4 := scaleInterval(ra.lo, ra.hi, rb.hi)
			lo, hi := c1, c2
			if c3 < lo {
				lo = c3
			}
			if c4 > hi {
				hi = c4
			}
			return val{lo: lo, hi: hi}
		}
		return top()
	}
}

// loadThrough models a memory load: frame slots read the tracked slot
// value; a π-seeded check yields its stable context symbol; a τ-seeded
// check yields its seed cell's symbol, fresh per execution — the cell is
// rewritten first so stale references from earlier loop iterations widen
// to the old interval; anything else is unknown.
func (e *engine) loadThrough(st *aState, dst, addrReg int32, chkIdx int32) {
	if chkIdx >= 0 {
		if s, ok := e.piSeeds[chkIdx]; ok {
			e.writeReg(st, dst, symVal(s))
			return
		}
		if cell, ok := e.tauSeeds[chkIdx]; ok {
			loc := e.numRegs + e.frameSize + cell
			e.write(st, loc, top())
			e.writeReg(st, dst, symVal(e.locSym(loc)))
			return
		}
	}
	addr := e.resolveExact(st, e.readReg(st, addrReg))
	if slot, ok := e.slotOf(addr); ok {
		e.writeReg(st, dst, e.read(st, e.numRegs+slot))
		return
	}
	e.writeReg(st, dst, top())
}

// storeThrough models a memory store: an exact frame slot is a strong
// update; any other frame-reaching or unknown address havocs the frame;
// a provably non-frame address (heap/global) leaves locations untouched.
func (e *engine) storeThrough(st *aState, addrReg, valReg int32) {
	addr := e.resolveExact(st, e.readReg(st, addrReg))
	if slot, ok := e.slotOf(addr); ok {
		e.write(st, e.numRegs+slot, e.readReg(st, valReg))
		return
	}
	if e.frameReach(st, addr, 8) || addr.isTop() {
		e.havocSlots(st)
	}
}

// ---------------------------------------------------------------------------
// certification queries

// chkAddr is one runtime check with its resolved abstract address.
type chkAddr struct {
	pc    int
	idx   int32
	kind  ir.CheckKind
	write bool
	pos   token.Pos
	v     val     // resolved address form at the check
	st    *aState // state at the check's pc (for bounds)
	live  bool    // the check's pc was reached by the fixpoint
}

// checkAddrs resolves the address of every check instruction under the
// converged states.
func (e *engine) checkAddrs() []chkAddr {
	var out []chkAddr
	for pc, in := range e.ff.Code {
		var idx, addrReg int32
		switch in.Op {
		case ir.FChkRead, ir.FChkWrite, ir.FChkLock, ir.FChkElided:
			idx, addrReg = in.B, in.A
		case ir.FLoadChk:
			idx, addrReg = in.C, in.B
		case ir.FStoreChk:
			idx, addrReg = in.C, in.A
		default:
			continue
		}
		fc := e.ff.Checks[idx]
		ca := chkAddr{pc: pc, idx: idx, kind: fc.Orig.Kind, write: fc.Write}
		if fc.Orig.Kind != ir.CheckNone && fc.Orig.Site >= 0 && fc.Orig.Site < len(e.prog.Sites) {
			ca.pos = e.prog.Sites[fc.Orig.Site].Pos
		}
		if st := e.states[pc]; st != nil {
			ca.live = true
			ca.st = st
			ca.v = e.resolveExact(st, e.read(st, int(addrReg)))
		}
		out = append(out, ca)
	}
	return out
}

// boundForm computes sound bounds of value(f) + [cLo, cHi] in st, using
// location intervals and, for the upper bound, the constraint store.
func (e *engine) boundForm(st *aState, f form, cLo, cHi int64) (int64, int64) {
	hi := addHi(e.upperForm(st, f), cHi)
	lo := addLo(mulBound(e.upperForm(st, negForm(f)), -1), cLo)
	return lo, hi
}

func negForm(f form) form {
	out := make(form, len(f))
	for s, c := range f {
		out[s] = -c
	}
	return out
}

// upperForm bounds value(f) from above: the plain interval evaluation,
// improved by every stored constraint cf <= b via f = cf + (f - cf).
func (e *engine) upperForm(st *aState, f form) int64 {
	best := e.flatForm(st, f, true)
	for _, c := range st.cons {
		rem := f.clone()
		if rem == nil {
			rem = make(form)
		}
		for s, k := range c.f {
			rem[s] -= k
		}
		for s, k := range rem {
			if k == 0 {
				delete(rem, s)
			}
		}
		cand := addHi(c.b, e.flatForm(st, rem, true))
		if cand < best {
			best = cand
		}
	}
	return best
}

// flatForm evaluates a bare form to its upper (or lower) interval bound.
func (e *engine) flatForm(st *aState, f form, upper bool) int64 {
	v := val{f: f}
	lo, hi := e.flatten(st, v, 8)
	if upper {
		return hi
	}
	return lo
}
