// Ticket certification, part 2: the proof. For each matched ticket group
// (ticket.go) the interval engine (interval.go) runs over a fully-checked
// compilation of the program and tries to show that every live dynamic
// check in a function resolves to an address of the shape
//
//	π + K·τ + r,   0 <= r <= K-1,   K % GranuleCells == 0
//
// where τ is the ticket (distinct per execution by counter integrity) and
// π is a heap object base that is constant during the parallel phase.
// Executions with distinct tickets then touch pairwise granule-disjoint
// regions of the same object — or different objects outright — so the
// checks can never fire and their shadow side effects are visible only to
// other checks on the same object. Region exclusivity (condition d) closes
// the argument: every other dynamic access to the object is either itself
// elided by some tier or runs in main strictly after all joins, where no
// check can fire regardless.
//
// Two instantiations share the core:
//
//   - interval-bounded (same function): τ is seeded at the cert's locked
//     counter-read check; π symbols are seeded at dynamic reads of "stable"
//     fields — heap pointer fields every AST store to which writes the same
//     heap base, with all recorded writes preceding the first spawn.
//
//   - summary-safe (cross function): every direct call site of a callee is
//     digested (ticket local | integer literal | unique heap base |
//     unknown); when all sites agree, the callee is certified once under
//     that abstract calling context.
//
// The proof certifies granule disjointness of in-bounds accesses; an
// out-of-bounds index would escape the region, but the checked execution's
// bounds checking (and the record/replay oracle) enforce in-bounds
// independently. See DESIGN.md.
package absint

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/compile"
	"repro/internal/ir"
	"repro/internal/pointsto"
	"repro/internal/shadow"
	"repro/internal/token"
	"repro/internal/typer"
)

// runTicketRules drives R3 over every surviving candidate position.
func runTicketRules(f *Facts, dynAt map[token.Pos][]*Access, opts Options, res *Result) {
	remaining := false
	for pos := range dynAt {
		if _, done := res.Dynamic[pos]; !done {
			remaining = true
			break
		}
	}
	if !remaining {
		return
	}
	idx := indexAccesses(f)
	groups := findCerts(f, idx)
	if len(groups) == 0 {
		return
	}

	// An indirect call could hide a counter write, a spawn, or a call into
	// a certified function with unknown arguments; reject the whole tier.
	for name := range f.World.Funcs {
		if f.Pts.HasIndirectCalls(name) {
			return
		}
	}

	prog := analysisProgram(f)
	if prog == nil {
		return
	}
	structured, maxJoinSeq := structuredJoin(f)
	stables := stableFields(f)

	// Deterministic order: groups by counter, certs by function name.
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].counter.Obj != groups[j].counter.Obj {
			return groups[i].counter.Obj < groups[j].counter.Obj
		}
		return groups[i].counter.Field < groups[j].counter.Field
	})
	for _, g := range groups {
		sort.Slice(g.certs, func(i, j int) bool { return g.certs[i].fn < g.certs[j].fn })
		for _, c := range g.certs {
			tryIntervalBounded(f, prog, idx, c, stables, dynAt, structured, maxJoinSeq, opts, res)
		}
		if opts.Summaries {
			trySummarySafe(f, prog, g, dynAt, structured, maxJoinSeq, opts, res)
		}
	}
}

// analysisProgram compiles the world with every check live (no elision, no
// discharge) so the engine sees each dynamic check as an instruction.
func analysisProgram(f *Facts) *ir.Program {
	prog, err := compile.Compile(f.World, f.Inf, compile.Options{
		Checks: true, RC: true, RCSiteAnalysis: true,
	})
	if err != nil || prog == nil {
		return nil
	}
	// Compile's pass pipeline already linearized and fused the access
	// windows; re-linearizing here would rebuild the flat form WITHOUT
	// fusion, and the engine's τ/π check seeding keys on the fused
	// FLoadChk/FStoreChk instructions.
	return prog
}

// checkPos maps a check to its site's source position.
func checkPos(prog *ir.Program, ck *ir.Check) token.Pos {
	if ck.Site >= 0 && ck.Site < len(prog.Sites) {
		return prog.Sites[ck.Site].Pos
	}
	return token.Pos{}
}

// provenAt reports that the position's dynamic checks are already elided by
// the lockset tier or an earlier absint rule.
func provenAt(f *Facts, res *Result, pos token.Pos) bool {
	if f.Discharged[pos] {
		return true
	}
	_, ok := res.Dynamic[pos]
	return ok
}

// certOutcome is a successful certification: every live dynamic check in
// the function either was already proven or decomposes as π + k·τ + r with
// a shared (π, k) and r in [0, k-1]; positions collects the newly certified
// check positions.
type certOutcome struct {
	ok        bool
	k         int64
	pi        Sym
	positions map[token.Pos]bool
}

// certifyFn runs the engine over one function under the given context and
// seeds and attempts the decomposition of every live dynamic check.
func certifyFn(f *Facts, prog *ir.Program, fnIdx int, ctx map[int]val,
	tauSeeds map[int32]int, piSeeds map[int32]Sym, piAllowed map[Sym]bool,
	opts Options, res *Result) certOutcome {

	eng := newEngine(prog, fnIdx, ctx, tauSeeds, piSeeds, 1, opts.StepBudget)
	eng.run()
	res.Stats.Steps += eng.steps
	if eng.gaveUp {
		res.Stats.GaveUp = true
		return certOutcome{}
	}
	ff := prog.Flat.Funcs[fnIdx]

	// Checks the engine cannot see: builtin referent checks and sharing-cast
	// checks execute inside FBuiltin/FCString/FScast, not as FChk
	// instructions. A dynamic one at a position no other tier has proven
	// defeats certification outright.
	for i := range ff.Builtins {
		bc := ff.Builtins[i].E
		for j := range bc.ArgChecks {
			ck := &bc.ArgChecks[j]
			if ck.Kind == ir.CheckDynamic && !provenAt(f, res, checkPos(prog, ck)) {
				return certOutcome{}
			}
		}
	}
	for _, sc := range ff.Scasts {
		for _, ck := range []*ir.Check{&sc.ChkR, &sc.ChkW} {
			if ck.Kind == ir.CheckDynamic && !provenAt(f, res, checkPos(prog, ck)) {
				return certOutcome{}
			}
		}
	}

	tau := symSeed(0)
	out := certOutcome{positions: make(map[token.Pos]bool)}
	havePi := false
	for _, ca := range eng.checkAddrs() {
		if ca.kind != ir.CheckDynamic {
			continue
		}
		if !ca.live {
			continue // unreachable under the abstraction: never executes
		}
		if provenAt(f, res, ca.pos) {
			continue // another tier already elides this position
		}

		// Decompose addr = π + k·τ + residual.
		k := ca.v.f[tau]
		if k <= 0 || k%int64(shadow.GranuleCells) != 0 {
			return certOutcome{}
		}
		var pi Sym
		piCount := 0
		resid := make(form)
		for s, cf := range ca.v.f {
			switch {
			case s == tau:
			case s >= symCtx0:
				if cf != 1 || !piAllowed[s] {
					return certOutcome{}
				}
				pi = s
				piCount++
			default:
				// Residual symbols must be locations the state can bound.
				if _, isLoc := eng.symLoc(s); !isLoc {
					return certOutcome{}
				}
				resid[s] = cf
			}
		}
		if piCount != 1 {
			return certOutcome{}
		}
		lo, hi := eng.boundForm(ca.st, resid, ca.v.lo, ca.v.hi)
		if lo < 0 || hi > k-1 {
			return certOutcome{}
		}
		if !havePi {
			out.pi, out.k, havePi = pi, k, true
		} else if out.pi != pi || out.k != k {
			return certOutcome{}
		}
		out.positions[ca.pos] = true
	}
	out.ok = true
	return out
}

// regionExclusive is condition (d): every recorded dynamic-mode access that
// may touch the certified object is either itself elided (certified here or
// by another tier) or runs in main strictly after all structured joins,
// where its checks cannot fire and the missing shadow bits of elided checks
// are unobservable. An access with an empty object set may touch anything.
func regionExclusive(f *Facts, target pointsto.Obj, certified map[token.Pos]bool,
	structured bool, maxJoinSeq int, res *Result) bool {

	if f.Pts.Obj(target).Kind != pointsto.ObjHeap {
		return false // granule exclusivity holds only for heap objects
	}
	for i := range f.Accesses {
		a := &f.Accesses[i]
		if a.Locked {
			continue // locked checks never touch shadow state
		}
		touches := len(a.Objs) == 0
		for _, r := range a.Objs {
			if r.Obj == target {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		if certified[a.Pos] || provenAt(f, res, a.Pos) {
			continue
		}
		if structured && a.Fn == "main" && a.Seq > maxJoinSeq {
			continue
		}
		return false
	}
	return true
}

// discharge records proofs for the certified positions. A position whose
// recorded accesses include a builtin referent stays live: discharging it
// would elide the referent check, which the engine never modeled.
func discharge(f *Facts, dynAt map[token.Pos][]*Access, outc certOutcome,
	reason, detail string, res *Result) {

	positions := make([]token.Pos, 0, len(outc.positions))
	for pos := range outc.positions {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool { return posLess(positions[i], positions[j]) })
	for _, pos := range positions {
		accs, known := dynAt[pos]
		if !known {
			continue // no vet record backs this check; leave it alone
		}
		referent := false
		for _, a := range accs {
			if a.Referent {
				referent = true
				break
			}
		}
		if !referent {
			res.prove(pos, reason, detail)
		}
	}
}

// stableFields finds heap pointer fields whose value is a single heap
// object's base for the whole parallel phase: every simple AST assignment
// to the field stores that base, nothing mutates it any other way, and
// every recorded write access overlapping it precedes the first spawn.
// Such a field can stand for the π symbol: all certified executions that
// read it observe the same granule-aligned base.
func stableFields(f *Facts) map[pointsto.Ref]pointsto.Obj {
	type fieldInfo struct {
		targets map[pointsto.Obj]bool
		stores  int
		bad     bool
	}
	fields := make(map[pointsto.Ref]*fieldInfo)
	rec := func(r pointsto.Ref) *fieldInfo {
		in := fields[r]
		if in == nil {
			in = &fieldInfo{targets: make(map[pointsto.Obj]bool)}
			fields[r] = in
		}
		return in
	}
	for _, fn := range sortedFuncNames(f) {
		name := fn
		scopedWalk(f.World, name, func(env *typer.Env, e ast.Expr) {
			switch e := e.(type) {
			case *ast.Assign:
				lrefs := f.Pts.EvalLValue(env, name, e.L)
				if e.Op == token.ASSIGN && len(lrefs) == 1 {
					in := rec(lrefs[0])
					in.stores++
					vr := f.Pts.EvalValue(env, name, e.R)
					if len(vr) == 1 && vr[0].Field == "" &&
						f.Pts.Obj(vr[0].Obj).Kind == pointsto.ObjHeap {
						in.targets[vr[0].Obj] = true
					} else {
						in.bad = true
					}
				} else {
					// Compound assignment or ambiguous l-value: the stored
					// value is not a plain base.
					for _, r := range lrefs {
						rec(r).bad = true
					}
				}
			case *ast.Unary:
				if e.Op == token.INC || e.Op == token.DEC || e.Op == token.AMP {
					for _, r := range f.Pts.EvalLValue(env, name, e.X) {
						rec(r).bad = true
					}
				}
			case *ast.Postfix:
				for _, r := range f.Pts.EvalLValue(env, name, e.X) {
					rec(r).bad = true
				}
			case *ast.Scast:
				for _, r := range f.Pts.EvalLValue(env, name, e.X) {
					rec(r).bad = true
				}
			}
		})
	}
	out := make(map[pointsto.Ref]pointsto.Obj)
	for r, in := range fields {
		if in.bad || in.stores == 0 || len(in.targets) != 1 || r.Field == "$" {
			continue
		}
		ok := true
		for i := range f.Accesses {
			a := &f.Accesses[i]
			if !a.Write {
				continue
			}
			for _, ar := range a.Objs {
				if ar.Obj != r.Obj || !fieldsOverlap(ar.Field, r.Field) {
					continue
				}
				// A builtin referent write is opaque (the AST scan above
				// cannot characterize the stored value); any other write
				// must precede sharing.
				if a.Referent || !precedesSharing(f, a) {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		for o := range in.targets {
			out[r] = o
		}
	}
	return out
}

// tryIntervalBounded certifies the cert's own function: τ is seeded at the
// locked counter-read check, π symbols at dynamic reads of stable fields.
func tryIntervalBounded(f *Facts, prog *ir.Program, idx accessIndex, c *cert,
	stables map[pointsto.Ref]pointsto.Obj, dynAt map[token.Pos][]*Access,
	structured bool, maxJoinSeq int, opts Options, res *Result) {

	fnIdx, ok := prog.FuncIdx[c.fn]
	if !ok {
		return
	}
	ff := prog.Flat.Funcs[fnIdx]

	// The counter read must appear as exactly one locked-mode read check.
	tauSeeds := make(map[int32]int)
	for i := range ff.Checks {
		ck := ff.Checks[i].Orig
		if ck == nil || ck.Kind != ir.CheckLocked || ff.Checks[i].Write {
			continue
		}
		if checkPos(prog, ck) == c.readPos {
			tauSeeds[int32(i)] = 0
		}
	}
	if len(tauSeeds) != 1 {
		return
	}

	piSeeds := make(map[int32]Sym)
	piObj := make(map[Sym]pointsto.Obj)
	piAllowed := make(map[Sym]bool)
	symFor := make(map[pointsto.Ref]Sym)
	next := 0
	for i := range ff.Checks {
		ck := ff.Checks[i].Orig
		if ck == nil || ck.Kind != ir.CheckDynamic || ff.Checks[i].Write {
			continue
		}
		a := idx.directAccess(checkPos(prog, ck), false)
		if a == nil || len(a.Objs) != 1 {
			continue
		}
		ref := a.Objs[0]
		o, stable := stables[ref]
		if !stable {
			continue
		}
		s, have := symFor[ref]
		if !have {
			s = CtxSym(next)
			next++
			symFor[ref] = s
			piObj[s] = o
			piAllowed[s] = true
		}
		piSeeds[int32(i)] = s
	}
	if len(piSeeds) == 0 {
		return
	}

	outc := certifyFn(f, prog, fnIdx, nil, tauSeeds, piSeeds, piAllowed, opts, res)
	if !outc.ok || len(outc.positions) == 0 {
		return
	}
	target := piObj[outc.pi]
	if !regionExclusive(f, target, outc.positions, structured, maxJoinSeq, res) {
		return
	}
	discharge(f, dynAt, outc, "interval-bounded",
		fmt.Sprintf("%s: ticket %s stride %d over heap object %s",
			c.fn, counterName(f, c.counter), outc.k, objName(f, target)), res)
}

// digArg is one abstracted actual in a call-site digest.
type digArg struct {
	kind byte // 'T' ticket, 'C' constant, 'P' heap base, '?' unknown
	cst  int64
	obj  pointsto.Obj
}

// trySummarySafe certifies callees across a call boundary: every direct
// call site of a callee anywhere in the program is digested; when all sites
// agree and at least one argument is a ticket of the group, the callee is
// certified once under that context.
func trySummarySafe(f *Facts, prog *ir.Program, g *certGroup,
	dynAt map[token.Pos][]*Access, structured bool, maxJoinSeq int,
	opts Options, res *Result) {

	certFor := make(map[string]*cert)
	for _, c := range g.certs {
		certFor[c.fn] = c
	}

	calls := make(map[string][][]digArg)
	for _, caller := range sortedFuncNames(f) {
		c := certFor[caller]
		name := caller
		scopedWalk(f.World, name, func(env *typer.Env, e ast.Expr) {
			call, isCall := e.(*ast.Call)
			if !isCall {
				return
			}
			id, isIdent := call.Fun.(*ast.Ident)
			if !isIdent {
				return
			}
			callee := f.World.Funcs[id.Name]
			if callee == nil || callee.Decl == nil || callee.Decl.Body == nil {
				return
			}
			if sym := env.Lookup(id.Name); sym != nil && sym.Kind != typer.SymFunc {
				return // a local shadows the function name
			}
			dig := make([]digArg, len(call.Args))
			for i, arg := range call.Args {
				dig[i] = digArg{kind: '?'}
				if c != nil {
					if aid, isId := arg.(*ast.Ident); isId && aid.Name == c.x {
						if sym := env.Lookup(aid.Name); sym != nil && sym.Decl == c.decl {
							dig[i] = digArg{kind: 'T'}
							continue
						}
					}
				}
				if lit, isLit := arg.(*ast.IntLit); isLit {
					dig[i] = digArg{kind: 'C', cst: lit.Value}
					continue
				}
				vr := f.Pts.EvalValue(env, name, arg)
				if len(vr) == 1 && vr[0].Field == "" &&
					f.Pts.Obj(vr[0].Obj).Kind == pointsto.ObjHeap {
					dig[i] = digArg{kind: 'P', obj: vr[0].Obj}
				}
			}
			calls[id.Name] = append(calls[id.Name], dig)
		})
	}

	callees := make([]string, 0, len(calls))
	for gname := range calls {
		callees = append(callees, gname)
	}
	sort.Strings(callees)

	for _, gname := range callees {
		if gname == "main" || f.Inf.ThreadRoots[gname] {
			continue // thread roots receive their argument from spawn, not a digestible site
		}
		digs := calls[gname]
		dig := digs[0]
		agree := true
		for _, d := range digs[1:] {
			if len(d) != len(dig) {
				agree = false
				break
			}
			for i := range d {
				if d[i] != dig[i] {
					agree = false
					break
				}
			}
			if !agree {
				break
			}
		}
		if !agree {
			continue
		}
		hasTau := false
		for _, a := range dig {
			if a.kind == 'T' {
				hasTau = true
			}
		}
		if !hasTau {
			continue
		}
		fnIdx, ok := prog.FuncIdx[gname]
		if !ok {
			continue
		}
		fn := prog.Funcs[fnIdx]
		if fn.NumParams != len(dig) {
			continue
		}
		ctx := make(map[int]val)
		piAllowed := make(map[Sym]bool)
		piObj := make(map[Sym]pointsto.Obj)
		for i, a := range dig {
			slot := fn.ParamSlots[i]
			switch a.kind {
			case 'T':
				ctx[slot] = symVal(symSeed(0))
			case 'C':
				ctx[slot] = cst(a.cst)
			case 'P':
				s := CtxSym(i)
				ctx[slot] = symVal(s)
				piAllowed[s] = true
				piObj[s] = a.obj
			}
		}
		outc := certifyFn(f, prog, fnIdx, ctx, nil, nil, piAllowed, opts, res)
		if !outc.ok || len(outc.positions) == 0 {
			continue
		}
		target := piObj[outc.pi]
		if !regionExclusive(f, target, outc.positions, structured, maxJoinSeq, res) {
			continue
		}
		discharge(f, dynAt, outc, "summary-safe",
			fmt.Sprintf("%s: every call site passes a ticket of %s, stride %d over heap object %s",
				gname, counterName(f, g.counter), outc.k, objName(f, target)), res)
	}
}

func sortedFuncNames(f *Facts) []string {
	names := make([]string, 0, len(f.World.Funcs))
	for name, fi := range f.World.Funcs {
		if fi.Decl != nil && fi.Decl.Body != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func objName(f *Facts, o pointsto.Obj) string {
	if in := f.Pts.Obj(o); in.Name != "" {
		return in.Name
	}
	return fmt.Sprintf("obj#%d", int32(o))
}

func counterName(f *Facts, r pointsto.Ref) string {
	if r.Field == "" {
		return objName(f, r.Obj)
	}
	return objName(f, r.Obj) + "." + r.Field
}
