package absint

// Engine-level termination tests: the widening discipline must reach a
// fixpoint on hostile loop shapes well inside the step budget, and budget
// exhaustion must surface as gaveUp (the caller then declines to certify)
// rather than an unsound or hung analysis.

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/ir"
	"repro/internal/parser"
	"repro/internal/qualinfer"
	"repro/internal/types"
)

// flatProgram compiles src with every check live and linearizes it, the
// same preparation analysisProgram performs for the real tier.
func flatProgram(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.ParseProgram(parser.Source{Name: "loops.shc", Text: src})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	w := types.BuildWorld(prog)
	if len(w.Errors) > 0 {
		t.Fatalf("resolve: %v", w.Errors[0])
	}
	inf := qualinfer.Infer(w)
	p, err := compile.Compile(w, inf, compile.Options{Checks: true, RC: true, RCSiteAnalysis: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// hostileLoops exercises the widening edge cases: an inequality-guarded
// loop whose bound is unknown (i != n never refines to a finite range), a
// down-counting inner loop, a non-unit stride, a loop-carried product, and
// a huge constant bound that plain iteration could never enumerate.
const hostileLoops = `
int hostile(int n, int m) {
	int s = 0;
	for (int i = 0; i != n; i = i + 3) {
		for (int j = m; j > 0; j = j - 1) {
			s = s + j;
		}
		s = s * 2 - s;
	}
	int k = 0;
	while (k < 1000000000) {
		k = k + 7;
	}
	int a = 0;
	int b = 1;
	while (a < n) {
		int t = a + b;
		a = b;
		b = t;
	}
	return s + k + a;
}

int main(void) {
	return hostile(5, 3);
}
`

func TestWideningTerminates(t *testing.T) {
	prog := flatProgram(t, hostileLoops)
	fnIdx, ok := prog.FuncIdx["hostile"]
	if !ok {
		t.Fatal("hostile not compiled")
	}
	eng := newEngine(prog, fnIdx, nil, nil, nil, 1, defaultStepBudget)
	eng.run()
	if eng.gaveUp {
		t.Fatalf("fixpoint hit the %d-step budget on hostile loops (steps=%d)",
			defaultStepBudget, eng.steps)
	}
	if eng.steps >= defaultStepBudget {
		t.Fatalf("steps = %d, want well under the %d budget", eng.steps, defaultStepBudget)
	}
	// Every reachable pc must carry a state: widening may only lose
	// precision, never reachability.
	if eng.states[0] == nil {
		t.Fatal("entry state missing")
	}
}

func TestStepBudgetExhaustionSetsGaveUp(t *testing.T) {
	prog := flatProgram(t, hostileLoops)
	fnIdx := prog.FuncIdx["hostile"]
	eng := newEngine(prog, fnIdx, nil, nil, nil, 1, 25)
	eng.run()
	if !eng.gaveUp {
		t.Fatalf("a 25-step budget must exhaust on hostile loops (steps=%d)", eng.steps)
	}
}

// TestWideningConvergesQuickly pins that widening, not enumeration, does
// the work: a loop bounded by a ten-digit constant converges in a step
// count proportional to the code size, not the trip count.
func TestWideningConvergesQuickly(t *testing.T) {
	src := `
int spin(void) {
	int k = 0;
	while (k < 2000000000) { k = k + 1; }
	return k;
}
int main(void) { return spin(); }
`
	prog := flatProgram(t, src)
	eng := newEngine(prog, prog.FuncIdx["spin"], nil, nil, nil, 1, defaultStepBudget)
	eng.run()
	if eng.gaveUp {
		t.Fatal("gave up on a single counted loop")
	}
	if eng.steps > 2000 {
		t.Fatalf("steps = %d; widening should converge in a handful of passes", eng.steps)
	}
}
