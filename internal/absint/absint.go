// Package absint is the abstract-interpretation tier of the SharC static
// analysis: a flow- and context-sensitive layer staged after internal/vet's
// lockset + points-to pass. vet hands it the access records that survived
// the lockset tier; absint tries to prove the remaining dynamic check sites
// redundant and returns per-position proofs that the compiler turns into
// elided checks with "absint" provenance.
//
// The layer runs three rule families, cheapest first:
//
//   - phase-disjoint (R1): a read of heap objects that no dynamic-mode
//     access ever writes. The shadow writer flag for such an object is never
//     set, so the read check cannot fire, and eliding it removes only
//     reader-bit side effects that no surviving check observes.
//
//   - may-happen-in-parallel (R2): accesses provably outside the parallel
//     phase. "post-join" covers main-thread accesses after every structured
//     spawn has been joined (joins clear the dead thread's shadow bits, so
//     only main's own bits remain and no later check can fire);
//     "pre-spawn" covers heap objects all of whose accesses happen in main
//     before the first spawn (nobody else ever checks the object, so the
//     elision is invisible).
//
//   - ticket certification (R3): the interval engine. A lock-protected
//     monotone counter ("ticket") read-and-incremented under a continuously
//     held unique lock yields distinct values per execution; array writes at
//     base + K*ticket + r with r in [0, K-1] and K a multiple of the shadow
//     granule therefore touch pairwise granule-disjoint regions and cannot
//     conflict. The engine proves the residual bound by running an
//     interval + affine-form fixpoint over the function's flat IR, either
//     in the certified function itself ("interval-bounded") or across a
//     call boundary via per-call-site digests ("summary-safe").
//
// Every rule discharges whole positions: a position is proven only when
// every dynamic-mode access recorded at it (including builtin referent
// pseudo-accesses) is covered, so eliding the position's checks — pointer
// and referent alike — preserves the execution's reports exactly.
package absint

import (
	"fmt"
	"sort"

	"repro/internal/pointsto"
	"repro/internal/qualinfer"
	"repro/internal/token"
	"repro/internal/types"
)

// Options selects which rule families run. The zero value disables
// everything; DefaultOptions enables all tiers.
type Options struct {
	// MHP enables the phase rules: phase-disjoint, pre-spawn, post-join.
	MHP bool
	// Intervals enables same-function ticket certification via the
	// interval engine ("interval-bounded").
	Intervals bool
	// Summaries enables cross-function certification through per-call-site
	// digests ("summary-safe"). Requires Intervals.
	Summaries bool
	// StepBudget caps the number of instruction-processing steps each
	// engine fixpoint may take before giving up (soundly). 0 = default.
	StepBudget int
}

// DefaultOptions enables every tier.
func DefaultOptions() Options {
	return Options{MHP: true, Intervals: true, Summaries: true}
}

const defaultStepBudget = 20000

// Access is one access record exported by vet: a dynamic- or locked-mode
// read or write of an l-value, or a builtin's referent pseudo-access.
type Access struct {
	Fn       string
	Pos      token.Pos
	LV       string
	Write    bool
	Locked   bool // locked-mode access; false = dynamic-mode
	Referent bool // builtin referent pseudo-access at a pointer argument
	Objs     []pointsto.Ref
	Must     []pointsto.Obj // must-held lock objects (locked accesses)
	Seq      int            // top-level statement index in main; -1 elsewhere
}

// Facts is everything the tier needs from vet's run.
type Facts struct {
	World *types.World
	Inf   *qualinfer.Result
	Pts   *pointsto.Analysis

	// Accesses are all recorded accesses of every mode, including builtin
	// referent pseudo-accesses (completeness of this list is what the
	// object-level rules rely on).
	Accesses []Access

	// Discharged marks positions the lockset tier already discharged;
	// absint skips them and may rely on their checks being elided.
	Discharged map[token.Pos]bool

	// Excluded marks positions whose checks are expected to fire (vet must
	// findings): they are not candidates, and no proof may treat them as
	// elided or harmless.
	Excluded map[token.Pos]bool

	// SpawnElsewhere reports a spawn outside main's top level; FirstSpawn
	// is the first spawning statement's top-level index in main (-1 none).
	SpawnElsewhere bool
	FirstSpawn     int
}

// Proof explains why one position's dynamic checks were discharged.
type Proof struct {
	Pos    token.Pos
	Reason string // pre-spawn | post-join | phase-disjoint | interval-bounded | summary-safe
	Detail string
}

// Stats summarizes a run.
type Stats struct {
	Candidates int            // dynamic positions examined
	Discharged int            // positions proven
	ByReason   map[string]int // proofs per reason
	Steps      int            // engine instruction steps across all fixpoints
	GaveUp     bool           // some fixpoint hit the step budget
}

// Result is the tier's output: proofs keyed by position. Every proven
// position is safe to compile with its dynamic checks elided.
type Result struct {
	Dynamic map[token.Pos]Proof
	Stats   Stats
}

// Analyze runs the tier over vet's facts.
func Analyze(f *Facts, opts Options) *Result {
	res := &Result{
		Dynamic: make(map[token.Pos]Proof),
		Stats:   Stats{ByReason: make(map[string]int)},
	}
	if f == nil || f.World == nil || f.Pts == nil {
		return res
	}
	if opts.StepBudget <= 0 {
		opts.StepBudget = defaultStepBudget
	}

	// Group dynamic-mode accesses by position; these are the candidates.
	dynAt := make(map[token.Pos][]*Access)
	for i := range f.Accesses {
		a := &f.Accesses[i]
		if a.Locked {
			continue
		}
		if f.Discharged[a.Pos] || f.Excluded[a.Pos] {
			continue
		}
		dynAt[a.Pos] = append(dynAt[a.Pos], a)
	}
	res.Stats.Candidates = len(dynAt)

	if opts.MHP {
		runPhaseRules(f, dynAt, res)
	}
	if opts.Intervals {
		runTicketRules(f, dynAt, opts, res)
	}

	res.Stats.Discharged = len(res.Dynamic)
	return res
}

// prove records a proof for pos unless one exists (first rule wins; the
// caller orders rules by precedence).
func (r *Result) prove(pos token.Pos, reason, detail string) bool {
	if _, ok := r.Dynamic[pos]; ok {
		return false
	}
	r.Dynamic[pos] = Proof{Pos: pos, Reason: reason, Detail: detail}
	r.Stats.ByReason[reason]++
	return true
}

// precedesSharing reports that the access runs in main strictly before the
// first thread is spawned.
func precedesSharing(f *Facts, a *Access) bool {
	return !f.SpawnElsewhere && a.Fn == "main" && a.Seq >= 0 &&
		(f.FirstSpawn < 0 || a.Seq < f.FirstSpawn)
}

// runPhaseRules applies post-join, pre-spawn, and phase-disjoint, in that
// precedence order, to every candidate position.
func runPhaseRules(f *Facts, dynAt map[token.Pos][]*Access, res *Result) {
	structured, maxJoinSeq := structuredJoin(f)
	preSafe := preSpawnObjects(f)
	writeFree := writeFreeHeapObjects(f)

	// Deterministic iteration order for stable Detail strings and stats.
	positions := make([]token.Pos, 0, len(dynAt))
	for pos := range dynAt {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool { return posLess(positions[i], positions[j]) })

	for _, pos := range positions {
		accs := dynAt[pos]

		// post-join: every dynamic access at the position runs in main
		// after the last join of a fully structured spawn/join phase.
		if structured {
			all := true
			for _, a := range accs {
				if a.Fn != "main" || a.Seq <= maxJoinSeq {
					all = false
					break
				}
			}
			if all && res.prove(pos, "post-join",
				fmt.Sprintf("main statement after last join (seq > %d)", maxJoinSeq)) {
				continue
			}
		}

		// pre-spawn: every object the position touches lives entirely in
		// main's pre-spawn phase.
		if allObjsIn(f, accs, preSafe) {
			if res.prove(pos, "pre-spawn", "heap object only accessed in main before first spawn") {
				continue
			}
		}

		// phase-disjoint: a pure read of write-free heap objects.
		readsOnly := true
		for _, a := range accs {
			if a.Write {
				readsOnly = false
				break
			}
		}
		if readsOnly && allObjsIn(f, accs, writeFree) {
			res.prove(pos, "phase-disjoint", "read of heap object with no dynamic-mode writes")
		}
	}
}

// allObjsIn reports that every access in accs resolves to a nonempty object
// set fully contained in ok.
func allObjsIn(f *Facts, accs []*Access, ok map[pointsto.Obj]bool) bool {
	for _, a := range accs {
		if len(a.Objs) == 0 {
			return false
		}
		for _, r := range a.Objs {
			if !ok[r.Obj] {
				return false
			}
		}
	}
	return true
}

// preSpawnObjects computes the heap objects all of whose recorded accesses
// (any mode, including referents) run in main before the first spawn.
func preSpawnObjects(f *Facts) map[pointsto.Obj]bool {
	seen := make(map[pointsto.Obj]bool)
	bad := make(map[pointsto.Obj]bool)
	for i := range f.Accesses {
		a := &f.Accesses[i]
		pre := precedesSharing(f, a)
		for _, r := range a.Objs {
			seen[r.Obj] = true
			if !pre {
				bad[r.Obj] = true
			}
		}
	}
	out := make(map[pointsto.Obj]bool)
	for o := range seen {
		if !bad[o] && f.Pts.Obj(o).Kind == pointsto.ObjHeap {
			out[o] = true
		}
	}
	return out
}

// writeFreeHeapObjects computes the heap objects with no dynamic-mode write
// access anywhere in the program. Granule rounding makes this object-level:
// a dynamic write to any field could set the writer flag of a granule a
// read of a neighboring field shares, so fields are not considered.
// Heap-only because distinct heap objects never share a granule (the
// allocator is granule-aligned), while globals and frames may.
func writeFreeHeapObjects(f *Facts) map[pointsto.Obj]bool {
	written := make(map[pointsto.Obj]bool)
	seen := make(map[pointsto.Obj]bool)
	for i := range f.Accesses {
		a := &f.Accesses[i]
		for _, r := range a.Objs {
			seen[r.Obj] = true
			if !a.Locked && a.Write {
				written[r.Obj] = true
			}
		}
	}
	out := make(map[pointsto.Obj]bool)
	for o := range seen {
		if !written[o] && f.Pts.Obj(o).Kind == pointsto.ObjHeap {
			out[o] = true
		}
	}
	return out
}

func posLess(a, b token.Pos) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

func posKey(p token.Pos) string {
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}
