package interp_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ast"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/shadow"
)

// corpusCase is one testdata program with its expected exit value.
var corpusCases = []struct {
	file string
	exit int64
}{
	{"linkedlist.shc", 210},
	{"hashtable.shc", 60},
	{"ringbuffer.shc", 12},
	{"sort.shc", 3},
	{"matmul.shc", -1}, // deterministic, pinned by orig-vs-checked equality
	{"barrier.shc", 15},
	{"bank.shc", 8},
	{"readers.shc", 4},
}

func readCorpus(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestCorpus runs every testdata program three ways — unchecked, checked
// with the bit-set shadow, checked with the state-machine shadow — and
// demands identical exit values, the expected result, and zero violation
// reports from the fully annotated sources.
func TestCorpus(t *testing.T) {
	for _, tc := range corpusCases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			src := readCorpus(t, tc.file)

			cfg := interp.DefaultConfig()
			rtO, exitO, err := core.BuildAndRun(src, compile.Options{}, cfg)
			if err != nil {
				t.Fatalf("orig: %v", err)
			}
			_ = rtO

			rtC, exitC, err := core.BuildAndRun(src, compile.DefaultOptions(), cfg)
			if err != nil {
				t.Fatalf("checked: %v", err)
			}
			if exitO != exitC {
				t.Fatalf("exit mismatch: orig %d, checked %d", exitO, exitC)
			}
			if tc.exit >= 0 && exitC != tc.exit {
				t.Fatalf("exit = %d, want %d", exitC, tc.exit)
			}
			for _, r := range rtC.Reports() {
				t.Errorf("report: %s", r)
			}

			cfgState := cfg
			cfgState.ShadowEncoding = shadow.EncodingState
			rtS, exitS, err := core.BuildAndRun(src, compile.DefaultOptions(), cfgState)
			if err != nil {
				t.Fatalf("state encoding: %v", err)
			}
			if exitS != exitC {
				t.Fatalf("state-encoding exit mismatch: %d vs %d", exitS, exitC)
			}
			for _, r := range rtS.Reports() {
				t.Errorf("state-encoding report: %s", r)
			}
		})
	}
}

// TestCorpusStripped: every corpus program still runs when its annotations
// are stripped (the baseline-checks-anything property), with no fatal
// errors — warnings are expected for the concurrent ones.
func TestCorpusStripped(t *testing.T) {
	for _, tc := range corpusCases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			src := readCorpus(t, tc.file)
			prog, err := parser.ParseProgram(parser.Source{Name: tc.file, Text: src})
			if err != nil {
				t.Fatal(err)
			}
			// Strip via the ast transform re-exported through bench's
			// helper: reimplemented inline to avoid the import cycle.
			stripped := stripViaAst(t, prog)
			cfg := interp.DefaultConfig()
			_, exit, err := core.BuildAndRun(stripped, compile.DefaultOptions(), cfg)
			if err != nil {
				t.Fatalf("stripped run: %v", err)
			}
			// Sequential programs keep their exit value even stripped; the
			// concurrent ones may differ only through racy markers, which
			// these programs avoid... except ringbuffer whose result rides
			// the racy done flag — still deterministic after join.
			if tc.exit >= 0 && exit != tc.exit {
				t.Logf("stripped exit %d (annotated %d)", exit, tc.exit)
			}
		})
	}
}

// stripViaAst applies the annotation-stripping transform and reprints.
func stripViaAst(t *testing.T, prog *ast.Program) string {
	t.Helper()
	return ast.PrintProgram(ast.StripAnnotations(prog))
}
