package interp_test

import (
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/sched"
)

// longRunner is a program whose workers loop over shared locked state long
// enough that an interrupt lands mid-run: two tellers plus main touching a
// locked counter for tens of thousands of scheduling points.
const longRunner = `
struct box {
	mutex *m;
	int locked(m) n;
};

void *worker(void *d) {
	struct box *b = d;
	for (int i = 0; i < 200000; i++) {
		mutexLock(b->m);
		b->n = b->n + 1;
		mutexUnlock(b->m);
	}
	return NULL;
}

int main(void) {
	struct box *b = malloc(sizeof(struct box));
	b->m = mutexNew();
	mutexLock(b->m);
	b->n = 0;
	mutexUnlock(b->m);
	struct box dynamic *bd = SCAST(struct box dynamic *, b);
	int h1 = spawn(worker, bd);
	int h2 = spawn(worker, bd);
	join(h1);
	join(h2);
	mutexLock(bd->m);
	int n = bd->n;
	mutexUnlock(bd->m);
	if (n != 400000) return 1;
	return 0;
}
`

func buildLongRunner(t *testing.T) *interp.Runtime {
	t.Helper()
	a, err := core.Analyze(parser.Source{Name: "longrunner.shc", Text: longRunner})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	prog, err := a.Build(compile.DefaultOptions())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	cfg := interp.DefaultConfig()
	cfg.Stdout = io.Discard
	cfg.Interrupt = new(atomic.Bool)
	cfg.Sched = sched.New(sched.NewRandom(7), sched.Options{})
	return interp.New(prog, cfg)
}

// TestInterruptSeededRun pins the serve layer's timeout contract: a seeded
// run stops promptly when interrupted from another goroutine, returns
// ErrInterrupted, and leaves no deadlock or failure reports behind.
func TestInterruptSeededRun(t *testing.T) {
	rt := buildLongRunner(t)
	done := make(chan error, 1)
	go func() {
		_, err := rt.Run()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	rt.Interrupt()
	select {
	case err := <-done:
		if !errors.Is(err, interp.ErrInterrupted) {
			t.Fatalf("Run returned %v, want ErrInterrupted", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("interrupted run did not terminate")
	}
	if !rt.Interrupted() {
		t.Fatal("Interrupted() = false after teardown")
	}
	for _, r := range rt.Reports() {
		t.Errorf("unexpected report after interrupt: %s", r.Msg)
	}
}

// TestInterruptIdempotentAndLate verifies Interrupt is safe to call
// repeatedly and after the run already finished.
func TestInterruptIdempotentAndLate(t *testing.T) {
	var flag atomic.Bool
	cfg := interp.DefaultConfig()
	cfg.Stdout = io.Discard
	cfg.Interrupt = &flag
	rt, ret, err := core.BuildAndRun(`int main(void) { return 5; }`, compile.DefaultOptions(), cfg)
	if err != nil || ret != 5 {
		t.Fatalf("run: ret=%d err=%v", ret, err)
	}
	rt.Interrupt()
	rt.Interrupt()
	if rt.Interrupted() {
		t.Fatal("a completed run must not report Interrupted")
	}
}

// TestInterruptFreeRun exercises the best-effort free-running path: the
// flag is noticed at shared-memory scheduling points without a controller.
func TestInterruptFreeRun(t *testing.T) {
	a, err := core.Analyze(parser.Source{Name: "longrunner.shc", Text: longRunner})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	prog, err := a.Build(compile.DefaultOptions())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	cfg := interp.DefaultConfig()
	cfg.Stdout = io.Discard
	cfg.Interrupt = new(atomic.Bool)
	rt := interp.New(prog, cfg)
	done := make(chan error, 1)
	go func() {
		_, err := rt.Run()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	rt.Interrupt()
	select {
	case err := <-done:
		// The run either unwound on the flag or finished just before the
		// interrupt landed; both are legal for the best-effort path.
		if err != nil && !errors.Is(err, interp.ErrInterrupted) {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("free-running interrupt did not terminate")
	}
}

// TestInterruptUnfiredIsInert pins that merely configuring the interrupt
// flag changes nothing about the run's result.
func TestInterruptUnfiredIsInert(t *testing.T) {
	a, err := core.Analyze(parser.Source{Name: "longrunner.shc", Text: longRunner})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	prog, err := a.Build(compile.DefaultOptions())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	run := func(withFlag bool) int64 {
		cfg := interp.DefaultConfig()
		cfg.Stdout = io.Discard
		cfg.Sched = sched.New(sched.NewRandom(3), sched.Options{})
		if withFlag {
			cfg.Interrupt = new(atomic.Bool)
		}
		rt := interp.New(prog, cfg)
		ret, err := rt.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return ret
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("exit with interrupt configured %d != without %d", b, a)
	}
}
