package interp

import (
	"fmt"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/locklog"
	"repro/internal/sched"
	"repro/internal/shadow"
	"repro/internal/telemetry"
	"repro/internal/token"
)

// thread is one executing ShC thread: a goroutine with a stack region, a
// lock log, and per-thread counters.
type thread struct {
	rt    *Runtime
	tid   int
	skey  int   // scheduler task key (0 when free-running)
	base  int64 // bottom of this thread's stack region
	sp    int64 // next free stack cell
	locks *locklog.Log
	rng   uint64

	frame int64 // current frame base

	retVal int64

	// noYield suppresses scheduling points during the nested evaluation of
	// a locked check's lock expression: elision removes that evaluation, so
	// yielding inside it would misalign decision sequences across elision
	// configs and break cross-config replay.
	noYield int

	nAccess  int64
	nDynamic int64
	nLockChk int64
	nBarrier int64
	nElided  int64

	// regs is the VM engine's register stack: each flat frame claims a
	// window of NumRegs cells. cstrs is its pending C-string stack, filled
	// by FCString instructions and consumed by the following FBuiltin.
	regs  []int64
	cstrs []string
}

func (rt *Runtime) newThread(tid int) *thread {
	base := rt.stackBase + int64(tid-1)*int64(rt.cfg.StackCells)
	return &thread{
		rt:    rt,
		tid:   tid,
		base:  base,
		sp:    base,
		locks: locklog.New(),
		rng:   uint64(rt.cfg.SeedRand)*2654435761 + uint64(tid)*0x9e3779b97f4a7c15 + 1,
	}
}

func (t *thread) fail(pos token.Pos, format string, args ...any) {
	panic(threadFailure{msg: fmt.Sprintf(format, args...), pos: pos})
}

// interruptPanic unwinds a thread torn down by Runtime.Interrupt; the
// epilogue recovers it without reporting.
type interruptPanic struct{}

// interruptCheck unwinds when the runtime's interrupt flag is raised. It
// runs at every scheduling point; when the run is not interruptible the
// cost is one nil comparison.
func (t *thread) interruptCheck() {
	if t.rt.intr != nil && t.rt.intr.Load() {
		panic(interruptPanic{})
	}
}

// schedDown unwinds after a controller call returned false: abort teardown
// (Runtime.Interrupt) unwinds silently, deadlock teardown fails the thread
// with the diagnostic.
func (t *thread) schedDown(pos token.Pos) {
	if t.rt.ctl != nil && t.rt.ctl.Aborted() {
		panic(interruptPanic{})
	}
	t.fail(pos, "deadlock: all threads blocked")
}

// schedPoint offers the execution token to the cooperative scheduler (when
// one is installed). A false return means the controller tore the run down
// (deadlock or abort) and this thread must unwind.
func (t *thread) schedPoint(p sched.Point) {
	t.interruptCheck()
	if t.rt.ctl == nil || t.noYield > 0 {
		return
	}
	if !t.rt.ctl.YieldPoint(t.skey, p) {
		t.schedDown(token.Pos{})
	}
}

// ---------------------------------------------------------------------------
// memory access

func (t *thread) loadRaw(addr int64) int64 {
	return atomic.LoadInt64(&t.rt.mem[addr])
}

func (t *thread) storeRaw(addr, v int64) {
	atomic.StoreInt64(&t.rt.mem[addr], v)
}

func (t *thread) checkAddr(addr int64, pos token.Pos) {
	if addr <= 0 || addr >= int64(len(t.rt.mem)) {
		t.fail(pos, "invalid memory access at 0x%x (null or out of bounds)", addr)
	}
}

// applyCheck runs the access's runtime check.
func (t *thread) applyCheck(addr int64, chk ir.Check, write bool) {
	switch chk.Kind {
	case ir.CheckDynamic:
		t.nDynamic++
		var c *shadow.Conflict
		sid := t.rt.siteIDs[chk.Site]
		if write {
			c = t.rt.shadow.ChkWrite(t.tid, addr, sid)
		} else {
			c = t.rt.shadow.ChkRead(t.tid, addr, sid)
		}
		if t.rt.tel != nil {
			t.rt.tel.DynamicCheck(t.tid, chk.Site, write, t.locks.Count() > 0, c != nil)
		}
		if tr := t.rt.tracer; tr != nil {
			k := telemetry.KindChkRead
			if write {
				k = telemetry.KindChkWrite
			}
			if c != nil {
				k = telemetry.KindConflict
			}
			tr.Append(k, t.tid, chk.Site, addr, 0)
		}
		if c != nil {
			t.rt.counters.Conflicts.Add(1)
			t.rt.reportConflict(ReportRace, t.rt.prog.Sites[chk.Site].Pos, c.Error(), c)
		}
	case ir.CheckLocked:
		t.nLockChk++
		t.noYield++
		lockAddr := t.eval(chk.Lock)
		t.noYield--
		held := t.locks.Held(lockAddr)
		if t.rt.tel != nil {
			t.rt.tel.LockedCheck(t.tid, chk.Site, !held)
		}
		if tr := t.rt.tracer; tr != nil {
			k := telemetry.KindLockedCheck
			if !held {
				k = telemetry.KindLockViolation
			}
			tr.Append(k, t.tid, chk.Site, addr, lockAddr)
		}
		if !held {
			t.rt.counters.LockViolations.Add(1)
			site := t.rt.prog.Sites[chk.Site]
			t.rt.report(ReportLock, site.Pos,
				fmt.Sprintf("lock violation: thread %d accessed %s @ %s: %d without holding its lock",
					t.tid, site.LValue, site.Pos.File, site.Pos.Line))
		}
	case ir.CheckElided:
		// The static pass removed the runtime work but left the site, so
		// the avoided check is still attributable in the profile.
		t.nElided++
		if t.rt.tel != nil {
			t.rt.tel.ElidedCheck(t.tid, chk.Site)
		}
		t.rt.tracer.Append(telemetry.KindElidedCheck, t.tid, chk.Site, addr, 0)
	}
}

func (t *thread) observe(addr int64, write bool, site int) {
	if obs := t.rt.cfg.Observer; obs != nil {
		obs.Access(t.tid, addr, write, t.locks, site)
	}
}

// countAccess tallies memory accesses for the %dynamic metric. Stack-frame
// slots are excluded: locals model registers, and the paper's "proportion
// of memory accesses to dynamic objects" is over globals and heap.
//
// Shared (non-stack) accesses are also the anchor for cooperative
// scheduling points: check elision blanks a Load/Store's check but never
// removes the access itself, so the decision sequence stays aligned across
// elision configs — which is what lets a trace recorded unelided replay
// exactly under -elide (the soundness oracle).
func (t *thread) countAccess(addr int64) {
	if addr < t.rt.stackBase || addr >= t.rt.heapBase {
		t.nAccess++
		t.schedPoint(sched.PointCheck)
	}
}

// load performs a checked read.
func (t *thread) load(addr int64, chk ir.Check, pos token.Pos) int64 {
	t.checkAddr(addr, pos)
	t.countAccess(addr)
	t.applyCheck(addr, chk, false)
	t.observe(addr, false, chk.Site)
	return t.loadRaw(addr)
}

// store performs a checked write, issuing the reference-counting barrier
// when the slot statically holds a tracked pointer.
func (t *thread) store(addr, val int64, chk ir.Check, barrier bool, pos token.Pos) {
	t.checkAddr(addr, pos)
	t.countAccess(addr)
	t.applyCheck(addr, chk, true)
	t.observe(addr, true, chk.Site)
	if barrier && t.rt.rc != nil {
		old := t.loadRaw(addr)
		t.rt.rc.Barrier(t.tid, addr, old, val)
		t.markBarriered(addr)
		t.nBarrier++
	}
	t.storeRaw(addr, val)
}

func (t *thread) markBarriered(addr int64) {
	w := addr / 32
	bit := uint32(1) << uint(addr%32)
	for {
		v := t.rt.barriered[w].Load()
		if v&bit != 0 {
			return
		}
		if t.rt.barriered[w].CompareAndSwap(v, v|bit) {
			return
		}
	}
}

func (t *thread) isBarriered(addr int64) bool {
	if t.rt.barriered == nil {
		return false
	}
	return t.rt.barriered[addr/32].Load()&(uint32(1)<<uint(addr%32)) != 0
}

// dynStore is used by builtins and teardown paths that write cells without
// static type knowledge: it barriers iff the cell was ever stored through a
// barrier.
func (t *thread) dynStore(addr, val int64) {
	if t.rt.rc != nil && t.isBarriered(addr) {
		old := t.loadRaw(addr)
		t.rt.rc.Barrier(t.tid, addr, old, val)
		t.nBarrier++
	}
	t.storeRaw(addr, val)
}

// ---------------------------------------------------------------------------
// calls and frames

// invoke runs function fnIdx with the given arguments on whichever engine
// the runtime selected. Every entry into user code — the main call, direct
// and indirect calls, and spawned thread bodies — goes through here, so
// one runtime never mixes engines.
func (t *thread) invoke(fnIdx int, args []int64) int64 {
	if t.rt.useVM {
		return t.runFlat(fnIdx, args)
	}
	return t.runFunc(t.rt.prog.Funcs[fnIdx], args)
}

// pushFrame claims and zeroes a fresh frame for fn and stores the argument
// values (tracked pointer parameters through the barrier). It returns the
// frame base and the caller's frame pointer for popFrame.
func (t *thread) pushFrame(fn *ir.Func, args []int64) (frameBase, prevFrame int64) {
	frameBase = t.sp
	if frameBase+int64(fn.FrameSize) > t.base+int64(t.rt.cfg.StackCells) {
		t.fail(fn.Pos, "stack overflow in %s", fn.Name)
	}
	t.sp = frameBase + int64(fn.FrameSize)
	// Zero the frame (stack cells are recycled).
	for i := int64(0); i < int64(fn.FrameSize); i++ {
		t.storeRaw(frameBase+i, 0)
	}
	prevFrame = t.frame
	t.frame = frameBase

	for i, v := range args {
		slot := fn.ParamSlots[i]
		if slot < len(fn.RCSlotSet) && fn.RCSlotSet[slot] && t.rt.rc != nil {
			t.rt.rc.Barrier(t.tid, frameBase+int64(slot), 0, v)
			t.markBarriered(frameBase + int64(slot))
			t.nBarrier++
		}
		t.storeRaw(frameBase+int64(slot), v)
	}
	return frameBase, prevFrame
}

// popFrame tears the frame down: the formal semantics zeroes a dead
// frame's cells; tracked pointer slots are nulled through the barrier so
// their referents' counts drop.
func (t *thread) popFrame(fn *ir.Func, frameBase, prevFrame int64) {
	for _, s := range fn.RCPtrSlots {
		addr := frameBase + int64(s)
		if old := t.loadRaw(addr); old != 0 && t.rt.rc != nil {
			t.rt.rc.Barrier(t.tid, addr, old, 0)
			t.nBarrier++
		}
		t.storeRaw(addr, 0)
	}
	t.frame = prevFrame
	t.sp = frameBase
}

// runFunc executes fn with the given argument values in a fresh frame and
// returns its result (the tree-walking engine).
func (t *thread) runFunc(fn *ir.Func, args []int64) int64 {
	frameBase, prevFrame := t.pushFrame(fn, args)
	t.retVal = 0
	t.execStmts(fn.Body)
	t.popFrame(fn, frameBase, prevFrame)
	return t.retVal
}

// ---------------------------------------------------------------------------
// statements

// ctl is the control-flow signal of statement execution.
type ctl int

const (
	ctlNone ctl = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

func (t *thread) execStmts(ss []ir.Stmt) ctl {
	for _, s := range ss {
		if c := t.exec(s); c != ctlNone {
			return c
		}
	}
	return ctlNone
}

func (t *thread) exec(s ir.Stmt) ctl {
	switch s := s.(type) {
	case *ir.SExpr:
		t.eval(s.E)
		return ctlNone
	case *ir.SIf:
		if t.eval(s.C) != 0 {
			return t.execStmts(s.Then)
		}
		return t.execStmts(s.Else)
	case *ir.SLoop:
		first := true
		for {
			if !(s.PostFirst && first) {
				if s.Cond != nil && t.eval(s.Cond) == 0 {
					return ctlNone
				}
			}
			first = false
			c := t.execStmts(s.Body)
			switch c {
			case ctlBreak:
				return ctlNone
			case ctlReturn:
				return ctlReturn
			}
			if s.Post != nil {
				t.eval(s.Post)
			}
			if s.PostFirst {
				if s.Cond != nil && t.eval(s.Cond) == 0 {
					return ctlNone
				}
			}
		}
	case *ir.SReturn:
		if s.E != nil {
			t.retVal = t.eval(s.E)
		} else {
			t.retVal = 0
		}
		return ctlReturn
	case *ir.SBreak:
		return ctlBreak
	case *ir.SContinue:
		return ctlContinue
	case *ir.SSwitch:
		v := t.eval(s.X)
		start := -1
		dflt := -1
		for i := range s.Arms {
			if s.IsDflt[i] {
				dflt = i
				continue
			}
			if s.Values[i] == v {
				start = i
				break
			}
		}
		if start < 0 {
			start = dflt
		}
		if start < 0 {
			return ctlNone
		}
		for i := start; i < len(s.Arms); i++ {
			c := t.execStmts(s.Arms[i])
			switch c {
			case ctlBreak:
				return ctlNone
			case ctlContinue, ctlReturn:
				return c
			}
		}
		return ctlNone
	}
	t.fail(token.Pos{}, "internal: unknown statement %T", s)
	return ctlNone
}

// ---------------------------------------------------------------------------
// do-while handling note: SLoop with PostFirst runs the body before the
// first condition test; Post still runs between iterations.

// eval evaluates an expression.
func (t *thread) eval(e ir.Expr) int64 {
	switch e := e.(type) {
	case *ir.Const:
		return e.V
	case *ir.StrAddr:
		return t.rt.prog.StringAddr[e.Idx]
	case *ir.FrameAddr:
		return t.frame + int64(e.Slot)
	case *ir.FuncVal:
		return ir.EncodeFunc(e.Index)
	case *ir.Load:
		return t.load(t.eval(e.Addr), e.Chk, token.Pos{})
	case *ir.Bin:
		return t.binop(e)
	case *ir.Logic:
		l := t.eval(e.L)
		if e.Or {
			if l != 0 {
				return 1
			}
			return boolVal(t.eval(e.R) != 0)
		}
		if l == 0 {
			return 0
		}
		return boolVal(t.eval(e.R) != 0)
	case *ir.Un:
		x := t.eval(e.X)
		switch e.Op {
		case ir.UnNeg:
			return -x
		case ir.UnNot:
			return boolVal(x == 0)
		case ir.UnBitNot:
			return ^x
		}
	case *ir.CondE:
		if t.eval(e.C) != 0 {
			return t.eval(e.T)
		}
		return t.eval(e.F)
	case *ir.Store:
		addr := t.eval(e.Addr)
		v := t.eval(e.Val)
		t.store(addr, v, e.Chk, e.Barrier, token.Pos{})
		return v
	case *ir.IncDec:
		addr := t.eval(e.Addr)
		old := t.load(addr, e.ChkR, token.Pos{})
		nv := old + e.Delta
		t.store(addr, nv, e.ChkW, e.Barrier, token.Pos{})
		if e.Post {
			return old
		}
		return nv
	case *ir.Compound:
		addr := t.eval(e.Addr)
		old := t.load(addr, e.ChkR, e.Pos)
		rhs := t.eval(e.RHS)
		nv := t.arith(e.Op, old, rhs, e.Pos)
		t.store(addr, nv, e.ChkW, e.Barrier, e.Pos)
		return nv
	case *ir.Call:
		return t.call(e)
	case *ir.BuiltinCall:
		return t.builtin(e)
	case *ir.Scast:
		return t.scast(e)
	}
	t.fail(token.Pos{}, "internal: unknown expression %T", e)
	return 0
}

func boolVal(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (t *thread) binop(e *ir.Bin) int64 {
	l := t.eval(e.L)
	r := t.eval(e.R)
	return t.arith(e.Op, l, r, e.Pos)
}

func (t *thread) arith(op ir.OpKind, l, r int64, pos token.Pos) int64 {
	switch op {
	case ir.OpAdd:
		return l + r
	case ir.OpSub:
		return l - r
	case ir.OpMul:
		return l * r
	case ir.OpDiv:
		if r == 0 {
			t.fail(pos, "division by zero")
		}
		return l / r
	case ir.OpMod:
		if r == 0 {
			t.fail(pos, "modulo by zero")
		}
		return l % r
	case ir.OpAnd:
		return l & r
	case ir.OpOr:
		return l | r
	case ir.OpXor:
		return l ^ r
	case ir.OpShl:
		return l << uint(r&63)
	case ir.OpShr:
		return l >> uint(r&63)
	case ir.OpEq:
		return boolVal(l == r)
	case ir.OpNe:
		return boolVal(l != r)
	case ir.OpLt:
		return boolVal(l < r)
	case ir.OpLe:
		return boolVal(l <= r)
	case ir.OpGt:
		return boolVal(l > r)
	case ir.OpGe:
		return boolVal(l >= r)
	}
	t.fail(pos, "internal: unknown operator")
	return 0
}

func (t *thread) call(e *ir.Call) int64 {
	args := make([]int64, len(e.Args))
	for i, a := range e.Args {
		args[i] = t.eval(a)
	}
	idx := e.Target
	if idx < 0 {
		v := t.eval(e.Fn)
		idx = ir.DecodeFunc(v)
		if idx < 0 || idx >= len(t.rt.prog.Funcs) {
			t.fail(e.Pos, "call through invalid function pointer 0x%x", v)
		}
	}
	fn := t.rt.prog.Funcs[idx]
	if len(args) != fn.NumParams {
		t.fail(e.Pos, "call to %s with %d args, want %d", fn.Name, len(args), fn.NumParams)
	}
	return t.invoke(idx, args)
}

// scast implements the sharing cast: verify the source is the sole
// reference (the oneref check of the formal semantics runs before the
// assignment it guards: |{b : M(b).value = a}| = 1, the source slot being
// that one), null the source slot, clear the object's reader/writer sets —
// after a cast, past accesses no longer constitute unintended sharing.
func (t *thread) scast(e *ir.Scast) int64 {
	return t.scastAt(t.eval(e.Addr), e)
}

// scastAt is the engine-shared body of the sharing cast, entered once the
// source l-value's address is known (the VM reaches it from FScast).
func (t *thread) scastAt(addr int64, e *ir.Scast) int64 {
	t.checkAddr(addr, e.Pos)
	t.schedPoint(sched.PointScast)
	v := t.load(addr, e.ChkR, e.Pos)
	if v == 0 {
		t.store(addr, 0, e.ChkW, e.Barrier, e.Pos)
		return 0 // casting NULL is trivially safe
	}
	// Attribute the oneref check to the cast's read site (elision keeps
	// the site index alive even when the access check itself is blanked).
	scSite := -1
	if e.ChkR.Kind != ir.CheckNone {
		scSite = e.ChkR.Site
	}
	failed := false
	if t.rt.rc != nil {
		obj := t.rt.resolveObj(v)
		if obj != 0 {
			if n := t.rt.rc.Count(t.tid, obj); n > 1 {
				failed = true
				t.rt.report(ReportOneRef, e.Pos,
					fmt.Sprintf("%s: sharing cast to %s failed: %d references to object 0x%x exist",
						e.Pos, e.TargetDesc, n, obj))
			}
			if size := t.rt.blockSize(obj); size > 0 {
				t.rt.shadow.ClearRange(obj, size)
			}
		}
	}
	if t.rt.tel != nil {
		t.rt.tel.Scast(t.tid, scSite, failed)
	}
	if tr := t.rt.tracer; tr != nil {
		k := telemetry.KindScast
		if failed {
			k = telemetry.KindOnerefFail
		}
		tr.Append(k, t.tid, scSite, addr, v)
	}
	if failed {
		t.rt.counters.OnerefFailures.Add(1)
	}
	t.store(addr, 0, e.ChkW, e.Barrier, e.Pos)
	return v
}

// rand is a per-thread xorshift generator (deterministic given the seed).
func (t *thread) rand() int64 {
	x := t.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.rng = x
	return int64(x >> 1)
}
