package interp_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/interp"
)

// exec runs src fully instrumented, failing the test on analysis errors.
func exec(t *testing.T, src string) (*interp.Runtime, int64, string) {
	t.Helper()
	var out bytes.Buffer
	cfg := interp.DefaultConfig()
	cfg.Stdout = &out
	rt, ret, err := core.BuildAndRun(src, compile.DefaultOptions(), cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rt, ret, out.String()
}

func TestReturnValue(t *testing.T) {
	_, ret, _ := exec(t, `int main(void) { return 42; }`)
	if ret != 42 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	_, ret, _ := exec(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main(void) {
	int s = 0;
	for (int i = 0; i < 10; i++) s += fib(i);
	return s;
}
`)
	if ret != 88 {
		t.Fatalf("sum fib(0..9) = %d, want 88", ret)
	}
}

func TestWhileDoWhileSwitch(t *testing.T) {
	_, ret, _ := exec(t, `
int classify(int n) {
	switch (n % 3) {
	case 0: return 100;
	case 1: return 200;
	default: return 300;
	}
}
int main(void) {
	int i = 0, acc = 0;
	while (i < 3) { acc += classify(i); i++; }
	do { acc++; } while (acc < 0);
	return acc;
}
`)
	if ret != 601 {
		t.Fatalf("acc = %d, want 601", ret)
	}
}

func TestPointersAndHeap(t *testing.T) {
	_, ret, _ := exec(t, `
int main(void) {
	int *a = malloc(10 * sizeof(int));
	for (int i = 0; i < 10; i++) a[i] = i * i;
	int s = 0;
	for (int i = 0; i < 10; i++) s += a[i];
	free(a);
	return s;
}
`)
	if ret != 285 {
		t.Fatalf("sum of squares = %d, want 285", ret)
	}
}

func TestStructsAndFunctionPointers(t *testing.T) {
	_, ret, _ := exec(t, `
typedef struct node {
	int value;
	struct node *next;
} node_t;

int twice(int x) { return 2 * x; }

struct ops { int (*apply)(int x); };

int main(void) {
	node_t *head = NULL;
	for (int i = 1; i <= 4; i++) {
		node_t *n = malloc(sizeof(node_t));
		n->value = i;
		n->next = head;
		head = n;
	}
	struct ops *o = malloc(sizeof(struct ops));
	o->apply = twice;
	int s = 0;
	node_t *p = head;
	while (p) { s += o->apply(p->value); p = p->next; }
	return s;
}
`)
	if ret != 20 {
		t.Fatalf("s = %d, want 20", ret)
	}
}

func TestStringsAndPrint(t *testing.T) {
	_, _, out := exec(t, `
int main(void) {
	char readonly *msg = "hello";
	print("len:");
	printInt(strlen(msg));
	if (strcmp(msg, "hello") == 0) print("eq\n");
	return 0;
}
`)
	if !strings.Contains(out, "len:") || !strings.Contains(out, "5") || !strings.Contains(out, "eq") {
		t.Fatalf("output = %q", out)
	}
}

func TestSpawnJoinSharedCounterWithMutex(t *testing.T) {
	src := `
struct shared {
	mutex *m;
	int locked(m) count;
};

void *worker(void *d) {
	struct shared *s = d;
	for (int i = 0; i < 100; i++) {
		mutexLock(s->m);
		s->count = s->count + 1;
		mutexUnlock(s->m);
	}
	return NULL;
}

int main(void) {
	struct shared *s = malloc(sizeof(struct shared));
	s->m = mutexNew();
	mutexLock(s->m);
	s->count = 0;
	mutexUnlock(s->m);
	struct shared dynamic *sd = SCAST(struct shared dynamic *, s);
	int t1 = spawn(worker, sd);
	int t2 = spawn(worker, sd);
	join(t1);
	join(t2);
	mutexLock(sd->m);
	int total = sd->count;
	mutexUnlock(sd->m);
	return total;
}
`
	rt, ret, _ := exec(t, src)
	if ret != 200 {
		t.Fatalf("count = %d, want 200", ret)
	}
	for _, r := range rt.Reports() {
		t.Errorf("unexpected report: %s", r)
	}
}

func TestUnannotatedSharingReportsRace(t *testing.T) {
	// Two threads increment an unprotected dynamic counter: the shadow
	// memory must produce a conflict report in the paper's format.
	// The racy phase flag sequences the two conflicting accesses while both
	// threads stay alive (thread-exit clears shadow bits, so merely
	// sequential thread lifetimes would correctly not race).
	src := `
int racy phase;
void *writerA(void *d) {
	int *p = d;
	p[0] = 1;
	phase = 1;
	while (phase < 2) yield();
	return NULL;
}
void *writerB(void *d) {
	int *p = d;
	while (phase < 1) yield();
	p[0] = 2;
	phase = 2;
	return NULL;
}
int main(void) {
	int *buf = malloc(sizeof(int));
	int dynamic *shared = SCAST(int dynamic *, buf);
	int t1 = spawn(writerA, shared);
	int t2 = spawn(writerB, shared);
	join(t1);
	join(t2);
	return 0;
}
`
	rt, _, _ := exec(t, src)
	races := rt.ReportsOfKind(interp.ReportRace)
	if len(races) == 0 {
		t.Fatal("expected a race report for unprotected shared counter")
	}
	msg := races[0].Msg
	if !strings.Contains(msg, "conflict(0x") || !strings.Contains(msg, "who(") || !strings.Contains(msg, "last(") {
		t.Errorf("report format: %s", msg)
	}
	if !strings.Contains(msg, "p[0]") {
		t.Errorf("report should name the l-value: %s", msg)
	}
}

func TestLockViolationReported(t *testing.T) {
	src := `
struct shared { mutex *m; int locked(m) v; };
void *worker(void *d) {
	struct shared *s = d;
	s->v = 7;
	return NULL;
}
int main(void) {
	struct shared *s = malloc(sizeof(struct shared));
	s->m = mutexNew();
	int t1 = spawn(worker, SCAST(struct shared dynamic *, s));
	join(t1);
	return 0;
}
`
	rt, _, _ := exec(t, src)
	locks := rt.ReportsOfKind(interp.ReportLock)
	if len(locks) == 0 {
		t.Fatal("expected a lock violation report")
	}
	if !strings.Contains(locks[0].Msg, "s->v") {
		t.Errorf("report should name the l-value: %s", locks[0].Msg)
	}
}

func TestOnerefFailureReported(t *testing.T) {
	// Casting while a second reference exists must fail the oneref check.
	src := `
struct box { int *p; };
int main(void) {
	int *buf = malloc(4);
	struct box *b = malloc(sizeof(struct box));
	b->p = buf;
	int dynamic *d = SCAST(int dynamic *, buf);
	return 0;
}
`
	rt, _, _ := exec(t, src)
	one := rt.ReportsOfKind(interp.ReportOneRef)
	if len(one) == 0 {
		t.Fatalf("expected a oneref failure; reports: %v", rt.Reports())
	}
	if !strings.Contains(one[0].Msg, "references") {
		t.Errorf("oneref message: %s", one[0].Msg)
	}
}

func TestOnerefSuccessAfterNullingOtherRef(t *testing.T) {
	src := `
struct box { int *p; };
int main(void) {
	int *buf = malloc(4);
	struct box *b = malloc(sizeof(struct box));
	b->p = buf;
	b->p = NULL;
	int dynamic *d = SCAST(int dynamic *, buf);
	return 0;
}
`
	rt, _, _ := exec(t, src)
	if one := rt.ReportsOfKind(interp.ReportOneRef); len(one) != 0 {
		t.Fatalf("unexpected oneref failure: %v", one)
	}
}

func TestScastNullsSource(t *testing.T) {
	src := `
int main(void) {
	int *buf = malloc(4);
	int dynamic *d = SCAST(int dynamic *, buf);
	if (buf == NULL) return 1;
	return 0;
}
`
	_, ret, _ := exec(t, src)
	if ret != 1 {
		t.Fatal("SCAST must null its source")
	}
}

func TestOwnershipHandoffRunsClean(t *testing.T) {
	// Producer fills a buffer privately, casts it, hands it to a consumer
	// that casts it back to private: no reports.
	src := `
struct chan {
	mutex *m;
	cond *cv;
	int locked(m) *locked(m) data;
};

int result;

void *consumer(void *d) {
	struct chan *c = d;
	mutexLock(c->m);
	while (c->data == NULL) condWait(c->cv, c->m);
	int private *mine = SCAST(int private *, c->data);
	c->data = NULL;
	mutexUnlock(c->m);
	int s = 0;
	for (int i = 0; i < 8; i++) s += mine[i];
	result = s;
	free(mine);
	return NULL;
}

int main(void) {
	struct chan *c = malloc(sizeof(struct chan));
	c->m = mutexNew();
	c->cv = condNew();
	mutexLock(c->m);
	c->data = NULL;
	mutexUnlock(c->m);
	struct chan dynamic *cd = SCAST(struct chan dynamic *, c);
	int t1 = spawn(consumer, cd);
	int *buf = malloc(8 * sizeof(int));
	for (int i = 0; i < 8; i++) buf[i] = i + 1;
	mutexLock(cd->m);
	cd->data = SCAST(int locked(cd->m) *, buf);
	condSignal(cd->cv);
	mutexUnlock(cd->m);
	join(t1);
	return result;
}
`
	rt, ret, _ := exec(t, src)
	if ret != 36 {
		t.Fatalf("result = %d, want 36", ret)
	}
	for _, r := range rt.Reports() {
		t.Errorf("unexpected report: %s", r)
	}
}

func TestRacyModeUnchecked(t *testing.T) {
	// A racy flag is intentionally shared without synchronization: no
	// reports, matching pbzip2's benign-race annotation.
	src := `
int racy done;
void *worker(void *d) {
	int n = 0;
	while (!done) { n++; if (n > 100000) break; yield(); }
	return NULL;
}
int main(void) {
	int t1 = spawn(worker, malloc(1));
	done = 1;
	join(t1);
	return 0;
}
`
	rt, _, _ := exec(t, src)
	if races := rt.ReportsOfKind(interp.ReportRace); len(races) != 0 {
		t.Fatalf("racy data must not be checked: %v", races)
	}
}

func TestDynamicGlobalInitThenSpawnReports(t *testing.T) {
	// The classic init-then-spawn false positive (§2.1): without a racy or
	// locked annotation, the write by main and reads by the worker conflict.
	src := `
int done;
void *worker(void *d) {
	int n = done;
	return NULL;
}
int main(void) {
	done = 1;
	int t1 = spawn(worker, malloc(1));
	join(t1);
	return 0;
}
`
	rt, _, _ := exec(t, src)
	if races := rt.ReportsOfKind(interp.ReportRace); len(races) == 0 {
		t.Fatal("expected a conflict report for unannotated shared flag")
	}
}

func TestThreadExitClearsBits(t *testing.T) {
	// Sequential threads may touch the same object: not a race (§4.2.1).
	src := `
void *worker(void *d) {
	int *p = d;
	p[0] = p[0] + 1;
	return NULL;
}
int main(void) {
	int *buf = malloc(4);
	int dynamic *s = SCAST(int dynamic *, buf);
	int t1 = spawn(worker, s);
	join(t1);
	int t2 = spawn(worker, s);
	join(t2);
	return 0;
}
`
	rt, _, _ := exec(t, src)
	if races := rt.ReportsOfKind(interp.ReportRace); len(races) != 0 {
		t.Fatalf("non-overlapping threads must not race: %v", races)
	}
}

func TestFreeClearsShadowAndReuse(t *testing.T) {
	src := `
void *worker(void *d) {
	int *p = d;
	p[0] = 1;
	free(p);
	return NULL;
}
int main(void) {
	int *a = malloc(4);
	int t1 = spawn(worker, SCAST(int dynamic *, a));
	join(t1);
	int *b = malloc(4);
	b[0] = 2;
	return b[0];
}
`
	rt, ret, _ := exec(t, src)
	if ret != 2 {
		t.Fatalf("ret = %d", ret)
	}
	if races := rt.ReportsOfKind(interp.ReportRace); len(races) != 0 {
		t.Fatalf("freed+reused memory must not race: %v", races)
	}
}

func TestAssertFailure(t *testing.T) {
	cfg := interp.DefaultConfig()
	_, _, err := core.BuildAndRun(`int main(void) { assert(1 == 2); return 0; }`,
		compile.DefaultOptions(), cfg)
	if err == nil || !strings.Contains(err.Error(), "assertion") {
		t.Fatalf("err = %v", err)
	}
}

func TestNullDereferenceFails(t *testing.T) {
	cfg := interp.DefaultConfig()
	_, _, err := core.BuildAndRun(`
int main(void) {
	int *p = NULL;
	return p[0];
}
`, compile.DefaultOptions(), cfg)
	if err == nil || !strings.Contains(err.Error(), "invalid memory access") {
		t.Fatalf("err = %v", err)
	}
}

func TestDivisionByZeroFails(t *testing.T) {
	cfg := interp.DefaultConfig()
	_, _, err := core.BuildAndRun(`
int main(void) {
	int z = 0;
	return 5 / z;
}
`, compile.DefaultOptions(), cfg)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestUncheckedBuildHasNoChecks(t *testing.T) {
	// The "Orig" baseline: same program, no instrumentation, races go
	// unreported.
	src := `
void *worker(void *d) {
	int *p = d;
	for (int i = 0; i < 50; i++) p[0] = p[0] + 1;
	return NULL;
}
int main(void) {
	int *buf = malloc(sizeof(int));
	int dynamic *s = SCAST(int dynamic *, buf);
	int t1 = spawn(worker, s);
	int t2 = spawn(worker, s);
	join(t1);
	join(t2);
	return 0;
}
`
	cfg := interp.DefaultConfig()
	rt, _, err := core.BuildAndRun(src, compile.Options{Checks: false, RC: false}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Reports()) != 0 {
		t.Fatalf("unchecked build must not report: %v", rt.Reports())
	}
	if rt.Stats().DynamicAccesses != 0 {
		t.Fatal("unchecked build must not count dynamic accesses")
	}
}

func TestStatsCounting(t *testing.T) {
	rt, _, _ := exec(t, `
void *worker(void *d) {
	int *p = d;
	for (int i = 0; i < 10; i++) p[i] = i;
	return NULL;
}
int main(void) {
	int *buf = malloc(10 * sizeof(int));
	int t1 = spawn(worker, SCAST(int dynamic *, buf));
	join(t1);
	return 0;
}
`)
	st := rt.Stats()
	if st.TotalAccesses == 0 || st.DynamicAccesses == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.DynamicAccesses > st.TotalAccesses {
		t.Fatalf("dynamic > total: %+v", st)
	}
	if st.MaxThreads < 2 {
		t.Fatalf("max threads = %d", st.MaxThreads)
	}
}

func TestManySequentialThreads(t *testing.T) {
	// More spawns than thread ids: ids must recycle.
	src := `
int racy total;
void *worker(void *d) {
	int *p = d;
	p[0] = p[0] + 1;
	return NULL;
}
int main(void) {
	for (int i = 0; i < 100; i++) {
		int *buf = malloc(4);
		int h = spawn(worker, SCAST(int dynamic *, buf));
		join(h);
		free(buf);
	}
	return 0;
}
`
	rt, _, _ := exec(t, src)
	if races := rt.ReportsOfKind(interp.ReportRace); len(races) != 0 {
		t.Fatalf("unexpected races: %v", races)
	}
}

func TestGlobalArraysAndInit(t *testing.T) {
	_, ret, _ := exec(t, `
int table[8];
int limit = 5;
int main(void) {
	for (int i = 0; i < 8; i++) table[i] = i;
	int s = 0;
	for (int i = 0; i < limit; i++) s += table[i];
	return s;
}
`)
	if ret != 10 {
		t.Fatalf("ret = %d, want 10", ret)
	}
}

func TestMemBuiltins(t *testing.T) {
	_, ret, _ := exec(t, `
int main(void) {
	char *a = malloc(16);
	memset(a, 7, 16);
	char *b = malloc(16);
	memcpy(b, a, 16);
	int s = 0;
	for (int i = 0; i < 16; i++) s += b[i];
	free(a);
	free(b);
	return s;
}
`)
	if ret != 112 {
		t.Fatalf("ret = %d, want 112", ret)
	}
}

func TestStrstrAndStrcpy(t *testing.T) {
	_, ret, _ := exec(t, `
int main(void) {
	char *buf = malloc(32);
	strcpy(buf, "needle in haystack");
	return strstr(buf, "hay");
}
`)
	if ret != 10 {
		t.Fatalf("strstr = %d, want 10", ret)
	}
}
