package interp_test

import (
	"bytes"
	"io"
	"sync/atomic"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// statsSrc is schedule-independent: four free-running workers each perform a
// fixed number of dynamic and locked accesses, so every aggregate count must
// come out the same on every run regardless of interleaving — which makes
// exact equality assertions meaningful under -race and across repetitions.
const statsSrc = `
struct shared {
	mutex *m;
	int locked(m) count;
	int cells[4];
};

void *worker(void *d) {
	struct shared *s = d;
	int acc = 0;
	for (int i = 0; i < 50; i++) {
		mutexLock(s->m);
		s->count = s->count + 1;
		acc += s->cells[i % 4];
		mutexUnlock(s->m);
	}
	return NULL;
}

int main(void) {
	struct shared *s = malloc(sizeof(struct shared));
	s->m = mutexNew();
	mutexLock(s->m);
	s->count = 0;
	for (int i = 0; i < 4; i++) s->cells[i] = i;
	mutexUnlock(s->m);
	struct shared dynamic *sd = SCAST(struct shared dynamic *, s);
	int t1 = spawn(worker, sd);
	int t2 = spawn(worker, sd);
	int t3 = spawn(worker, sd);
	int t4 = spawn(worker, sd);
	join(t1);
	join(t2);
	join(t3);
	join(t4);
	mutexLock(sd->m);
	int total = sd->count;
	mutexUnlock(sd->m);
	return total;
}
`

func runStats(t *testing.T, ctl *sched.Controller) *interp.Runtime {
	t.Helper()
	cfg := interp.DefaultConfig()
	cfg.Stdout = io.Discard
	cfg.Metrics = true
	cfg.TraceCapacity = 1 << 14
	cfg.Sched = ctl
	rt, ret, err := core.BuildAndRun(statsSrc, compile.DefaultOptions(), cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if ret != 200 {
		t.Fatalf("count = %d, want 200", ret)
	}
	for _, r := range rt.Reports() {
		t.Errorf("unexpected report: %s", r)
	}
	return rt
}

// TestStatsExactUnderFreeRun is the regression test for the stats spine:
// before the counters moved onto the atomic telemetry.Counters, the
// per-thread tallies were flushed into a plain struct under a mutex taken
// inconsistently, and this test flipped under -race and occasionally lost
// whole thread contributions. Now every run — free-running Go scheduling,
// four workers — must report byte-exact aggregates matching a deterministic
// reference run of the same program.
func TestStatsExactUnderFreeRun(t *testing.T) {
	ref := runStats(t, sched.New(sched.NewRandom(1), sched.Options{})).Stats()

	for rep := 0; rep < 4; rep++ {
		rt := runStats(t, nil) // free-running goroutines
		got := rt.Stats()
		if got.TotalAccesses != ref.TotalAccesses ||
			got.DynamicAccesses != ref.DynamicAccesses ||
			got.LockChecks != ref.LockChecks ||
			got.Barriers != ref.Barriers {
			t.Fatalf("rep %d: free-run stats %+v != deterministic reference %+v", rep, got, ref)
		}
		if got.MaxThreads != ref.MaxThreads {
			t.Fatalf("rep %d: MaxThreads = %d, want %d", rep, got.MaxThreads, ref.MaxThreads)
		}

		// The snapshot's global rollup is a view over the same spine and
		// must agree with Stats exactly.
		snap := rt.TelemetrySnapshot()
		if snap == nil {
			t.Fatal("telemetry snapshot missing with Metrics on")
		}
		if snap.Global.DynamicChecks != got.DynamicAccesses ||
			snap.Global.LockChecks != got.LockChecks ||
			snap.Global.TotalAccesses != got.TotalAccesses {
			t.Fatalf("rep %d: snapshot global %+v disagrees with Stats %+v", rep, snap.Global, got)
		}

		// Per-site reads/writes/locked sum to the global check counts.
		var siteChecks int64
		for i := range snap.Sites {
			siteChecks += snap.Sites[i].Checks()
		}
		if siteChecks != got.DynamicAccesses+got.LockChecks {
			t.Fatalf("rep %d: site checks sum %d != global %d",
				rep, siteChecks, got.DynamicAccesses+got.LockChecks)
		}
	}
}

// TestTracerCompleteUnderFreeRun: the event *set* for this program is
// schedule-independent (free runs emit no scheduler events), so the tracer
// total must match the free-run reference and nothing may be dropped at
// this capacity. Exercises the ring buffer's mutex under real contention.
func TestTracerCompleteUnderFreeRun(t *testing.T) {
	ref := runStats(t, nil).Tracer()
	if ref == nil {
		t.Fatal("tracer missing with TraceCapacity set")
	}
	if ref.Dropped() != 0 {
		t.Fatalf("reference run dropped %d events", ref.Dropped())
	}
	for rep := 0; rep < 3; rep++ {
		tr := runStats(t, nil).Tracer()
		if tr.Total() != ref.Total() || tr.Dropped() != 0 {
			t.Fatalf("rep %d: %d events (%d dropped), want %d (0 dropped)",
				rep, tr.Total(), tr.Dropped(), ref.Total())
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatalf("rep %d: jsonl export: %v", rep, err)
		}
		if int64(bytes.Count(buf.Bytes(), []byte("\n"))) != int64(tr.Total()) {
			t.Fatalf("rep %d: jsonl line count != %d events", rep, tr.Total())
		}
	}
}

// TestSharedCountersAcrossRuns mirrors what Explore does: successive
// runtimes handed the same Counters and Collector must accumulate, and the
// spine must be safe for a concurrent reader while a run is in flight.
func TestSharedCountersAcrossRuns(t *testing.T) {
	cfg := interp.DefaultConfig()
	cfg.Stdout = io.Discard
	cfg.Metrics = true
	cfg.Counters = &telemetry.Counters{}

	var first int64
	for i := 0; i < 3; i++ {
		var stop atomic.Bool
		done := make(chan struct{})
		go func() { // concurrent reader of the live spine
			defer close(done)
			for !stop.Load() {
				if cfg.Counters.DynamicChecks.Load() < 0 {
					t.Error("counter went negative")
					return
				}
			}
		}()
		if _, _, err := core.BuildAndRun(statsSrc, compile.DefaultOptions(), cfg); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		stop.Store(true)
		<-done
		if i == 0 {
			first = cfg.Counters.DynamicChecks.Load()
			if first == 0 {
				t.Fatal("no dynamic checks counted")
			}
		}
	}
	if got := cfg.Counters.DynamicChecks.Load(); got != 3*first {
		t.Fatalf("shared spine accumulated %d dynamic checks, want %d", got, 3*first)
	}
}
