package interp_test

// Differential tests for the two execution engines: the recursive tree
// walker and the register VM over the flat instruction form. The linearize
// pass promises instruction order identical to the tree walker's
// evaluation order, so under a fixed cooperative schedule the two engines
// must agree on everything observable: exit values, violation reports,
// statistics, and the recorded schedule trace, across every elision
// configuration.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/parser"
	"repro/internal/sched"
	"repro/internal/semantics"
)

// allCorpusFiles is every testdata program, racy ones included.
var allCorpusFiles = []string{
	"bank.shc", "barrier.shc", "hashtable.shc", "linkedlist.shc",
	"matmul.shc", "racy_handoff.shc", "racy_pair.shc", "racy_reader.shc",
	"readers.shc", "ringbuffer.shc", "sort.shc",
}

// engineRunResult is everything observable from one seeded run.
type engineRunResult struct {
	exit    int64
	errMsg  string
	reports string
	stats   interp.Stats
	trace   string
}

// engineRun executes prog on the chosen engine under a seeded cooperative
// schedule, recording the schedule trace.
func engineRun(t *testing.T, prog *ir.Program, engine interp.Engine, cache bool, seed int64) engineRunResult {
	t.Helper()
	ctl := sched.New(sched.NewRandom(seed), sched.Options{Record: true})
	cfg := interp.DefaultConfig()
	cfg.Engine = engine
	cfg.CheckCache = cache
	cfg.Sched = ctl
	rt := interp.New(prog, cfg)
	if rt.EngineUsed() != engine {
		t.Fatalf("engine %v requested, %v resolved", engine, rt.EngineUsed())
	}
	exit, err := rt.Run()
	data, merr := ctl.Trace().Marshal()
	if merr != nil {
		t.Fatal(merr)
	}
	res := engineRunResult{
		exit:    exit,
		reports: rt.FormatReports(),
		stats:   rt.Stats(),
		trace:   string(data),
	}
	if err != nil {
		res.errMsg = err.Error()
	}
	return res
}

// diffEngines compares a tree-walker run against a VM run of the same
// program, configuration, and seed.
func diffEngines(t *testing.T, label string, tree, vm engineRunResult) {
	t.Helper()
	if tree.exit != vm.exit {
		t.Errorf("%s: exit tree=%d vm=%d", label, tree.exit, vm.exit)
	}
	if tree.errMsg != vm.errMsg {
		t.Errorf("%s: error tree=%q vm=%q", label, tree.errMsg, vm.errMsg)
	}
	if tree.reports != vm.reports {
		t.Errorf("%s: reports diverge:\ntree:\n%s---\nvm:\n%s", label, tree.reports, vm.reports)
	}
	if tree.stats != vm.stats {
		t.Errorf("%s: stats tree=%+v vm=%+v", label, tree.stats, vm.stats)
	}
	if tree.trace != vm.trace {
		t.Errorf("%s: recorded schedule traces differ (scheduling points moved)", label)
	}
}

// TestEngineDifferentialCorpus runs every corpus program through both
// engines under fixed seeds and every elision configuration, demanding
// byte-identical observables.
func TestEngineDifferentialCorpus(t *testing.T) {
	configs := []struct {
		name  string
		elide bool
		cache bool
	}{
		{"plain", false, false},
		{"elide", true, false},
		{"elide+cache", true, true},
	}
	for _, file := range allCorpusFiles {
		file := file
		t.Run(file, func(t *testing.T) {
			for _, cc := range configs {
				copts := compile.DefaultOptions()
				copts.Elide = cc.elide
				prog := buildCorpus(t, file, copts)
				for _, seed := range []int64{1, 12} {
					label := fmt.Sprintf("%s/seed=%d", cc.name, seed)
					tree := engineRun(t, prog, interp.EngineTree, cc.cache, seed)
					vm := engineRun(t, prog, interp.EngineVM, cc.cache, seed)
					diffEngines(t, label, tree, vm)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// fuzz oracle: random well-typed programs from the semantics generator

// shcType renders a core-language type as an ShC type: int with its mode,
// wrapped in one '*' per reference level, each star carrying the level's
// mode qualifier.
func shcType(ty *semantics.Type) string {
	if ty.Ref == nil {
		return "int " + ty.Mode.String()
	}
	return shcType(ty.Ref) + " * " + ty.Mode.String()
}

// shcRenderer turns a semantics.Program into ShC source. Spawns are kept
// only in main (worker-side spawns could recurse unboundedly without the
// step budget the semantics machine enforces) and every spawn gets a
// matching join so the program terminates on its own.
type shcRenderer struct {
	p   *semantics.Program
	sb  strings.Builder
	env map[string]*semantics.Type
}

func renderShC(p *semantics.Program) string {
	r := &shcRenderer{p: p, env: map[string]*semantics.Type{}}
	for _, g := range p.Globals {
		r.env[g.Name] = g.Type
		fmt.Fprintf(&r.sb, "%s %s;\n", shcType(g.Type), g.Name)
	}
	r.sb.WriteString("\n")
	for _, th := range p.Threads {
		if th.Name != p.Main {
			r.thread(&th, false)
		}
	}
	r.thread(p.Thread(p.Main), true)
	return r.sb.String()
}

func (r *shcRenderer) typeOfLVal(l semantics.LVal) *semantics.Type {
	ty := r.env[l.Name]
	if l.Deref {
		return ty.Ref
	}
	return ty
}

func (r *shcRenderer) thread(th *semantics.ThreadDef, isMain bool) {
	if isMain {
		fmt.Fprintf(&r.sb, "int main(void) {\n")
	} else {
		fmt.Fprintf(&r.sb, "void *%s(void *d) {\n", th.Name)
	}
	for _, l := range th.Locals {
		r.env[l.Name] = l.Type
		fmt.Fprintf(&r.sb, "\t%s %s;\n", shcType(l.Type), l.Name)
	}
	handles := 0
	for _, s := range th.Body {
		if s.Kind == semantics.StmtSpawn {
			if !isMain || s.Thread == r.p.Main {
				continue
			}
			fmt.Fprintf(&r.sb, "\tint private h%d = spawn(%s, NULL);\n", handles, s.Thread)
			handles++
			continue
		}
		r.assign(s)
	}
	for i := 0; i < handles; i++ {
		fmt.Fprintf(&r.sb, "\tjoin(h%d);\n", i)
	}
	if isMain {
		r.sb.WriteString("\treturn 0;\n}\n\n")
	} else {
		r.sb.WriteString("\treturn NULL;\n}\n\n")
	}
	for _, l := range th.Locals {
		delete(r.env, l.Name)
	}
}

func (r *shcRenderer) assign(s semantics.Stmt) {
	lhs := s.L.String()
	switch s.R.Kind {
	case semantics.RHSInt:
		fmt.Fprintf(&r.sb, "\t%s = %d;\n", lhs, s.R.N)
	case semantics.RHSNull:
		fmt.Fprintf(&r.sb, "\t%s = NULL;\n", lhs)
	case semantics.RHSNew:
		fmt.Fprintf(&r.sb, "\t%s = malloc(8);\n", lhs)
	case semantics.RHSLVal:
		fmt.Fprintf(&r.sb, "\t%s = %s;\n", lhs, s.R.L)
	case semantics.RHSScast:
		fmt.Fprintf(&r.sb, "\t%s = SCAST(%s, %s);\n", lhs, shcType(r.typeOfLVal(s.L)), s.R.X)
	}
}

// TestEngineDifferentialFuzz is the differential fuzz oracle: random
// well-typed core-language programs are rendered to ShC, and every one
// that passes the static checker runs through both engines under fixed
// seeds with identical observable behavior required. Programs the static
// checker rejects (the renderer maps the core language onto a stricter
// surface syntax) are skipped; the test demands a minimum yield so the
// oracle cannot silently degenerate.
func TestEngineDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2008))
	ran := 0
	for i := 0; i < 80; i++ {
		src := renderShC(semantics.GenProgram(rng))
		a, err := core.Analyze(parser.Source{Name: fmt.Sprintf("fuzz%d.shc", i), Text: src})
		if err != nil || !a.Check.OK() {
			continue
		}
		ran++
		for _, elide := range []bool{false, true} {
			copts := compile.DefaultOptions()
			copts.Elide = elide
			prog, err := a.Build(copts)
			if err != nil {
				t.Fatalf("program %d: build: %v", i, err)
			}
			for _, seed := range []int64{1, 7} {
				label := fmt.Sprintf("program %d elide=%v seed=%d", i, elide, seed)
				tree := engineRun(t, prog, interp.EngineTree, elide, seed)
				vm := engineRun(t, prog, interp.EngineVM, elide, seed)
				diffEngines(t, label, tree, vm)
				if t.Failed() {
					t.Fatalf("source of diverging program:\n%s", src)
				}
			}
		}
	}
	if ran < 15 {
		t.Fatalf("fuzz yield too low: only %d/80 rendered programs passed the checker", ran)
	}
}

// ---------------------------------------------------------------------------
// cross-engine replay matrix

// TestSchedCrossEngineReplay extends the elision soundness oracle across
// engines: a schedule recorded on the tree walker replays without
// divergence on both engines under every elision configuration (off,
// static, static+cache), with identical exit values and reports — and the
// VM records the byte-identical trace in the first place.
func TestSchedCrossEngineReplay(t *testing.T) {
	engines := []interp.Engine{interp.EngineTree, interp.EngineVM}
	for _, file := range []string{"bank.shc", "barrier.shc", "racy_handoff.shc", "racy_reader.shc"} {
		file := file
		t.Run(file, func(t *testing.T) {
			plain := buildCorpus(t, file, compile.DefaultOptions())
			elideOpts := compile.DefaultOptions()
			elideOpts.Elide = true
			elided := buildCorpus(t, file, elideOpts)

			cells := []struct {
				name  string
				prog  *ir.Program
				cache bool
			}{
				{"off", plain, false},
				{"static", elided, false},
				{"static+cache", elided, true},
			}

			for _, seed := range []int64{3, 17} {
				// Record on both engines: byte-identical traces required.
				rec := engineRun(t, plain, interp.EngineTree, false, seed)
				recVM := engineRun(t, plain, interp.EngineVM, false, seed)
				diffEngines(t, fmt.Sprintf("record seed=%d", seed), rec, recVM)

				tr, err := sched.UnmarshalTrace([]byte(rec.trace))
				if err != nil {
					t.Fatal(err)
				}
				for _, cell := range cells {
					for _, eng := range engines {
						label := fmt.Sprintf("seed=%d %s engine=%v", seed, cell.name, eng)
						rep := sched.NewReplay(tr)
						cfg := interp.DefaultConfig()
						cfg.Engine = eng
						cfg.CheckCache = cell.cache
						got := schedRun(t, cell.prog, cfg, rep)
						if rep.Diverged() {
							t.Fatalf("%s: trace did not align", label)
						}
						if got.exit != rec.exit {
							t.Fatalf("%s: exit %d, recorded %d", label, got.exit, rec.exit)
						}
						if got.reports != rec.reports {
							t.Fatalf("%s: reports diverge under a fixed schedule:\nrecorded:\n%s---\ngot:\n%s",
								label, rec.reports, got.reports)
						}
					}
				}
			}
		})
	}
}
