// Package interp executes instrumented ShC programs. Every ShC thread is a
// real goroutine, every ShC mutex a real sync.Mutex, and memory is one flat
// array of int64 cells, so the dynamic checks interleave with genuine
// concurrency exactly as SharC's instrumented native code does.
//
// The runtime wires together the three SharC substrates: shadow memory for
// the dynamic sharing mode (internal/shadow), per-thread lock logs for the
// locked mode (internal/locklog), and concurrent reference counting for
// sharing casts (internal/refcount). Violations are collected as reports in
// the paper's format rather than aborting, mirroring SharC's error logs.
package interp

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/locklog"
	"repro/internal/refcount"
	"repro/internal/sched"
	"repro/internal/shadow"
	"repro/internal/telemetry"
	"repro/internal/token"
)

// RCScheme selects the reference-counting implementation.
type RCScheme int

const (
	RCOff RCScheme = iota
	RCLevanoniPetrank
	RCNaive
)

// Observer receives access and synchronization events, letting baseline
// race detectors (Eraser-style lockset, vector-clock happens-before) run
// over the same executions.
type Observer interface {
	Access(tid int, addr int64, write bool, locks *locklog.Log, site int)
	Acquire(tid int, lock int64)
	Release(tid int, lock int64)
	Spawn(parent, child int)
	Join(parent, child int)
	CondSignal(tid int, cv int64)
	CondWake(tid int, cv int64)
	ThreadEnd(tid int)
	// Malloc and Free report heap block lifetimes: real detectors reset
	// per-location state on allocation (Eraser returns locations to
	// Virgin) and order free-before-malloc through the allocator's
	// internal lock (a happens-before edge).
	Malloc(tid int, base, size int64)
	Free(tid int, base, size int64)
}

// Config tunes the runtime.
type Config struct {
	StackCells int // per-thread stack size (cells)
	HeapCells  int // heap size (cells)
	Stdout     io.Writer
	RC         RCScheme
	MaxReports int
	Observer   Observer
	// SeedRand seeds the deterministic per-thread generators.
	SeedRand int64
	// ShadowEncoding selects the reader/writer-set representation: the
	// paper's bit sets or the compact state machine (§4.2.1/§7 future
	// work).
	ShadowEncoding shadow.Encoding
	// CheckCache enables the per-thread granule check cache and last-page
	// memo in the shadow (the runtime half of check elision). Off by
	// default.
	CheckCache bool
	// Sched, when non-nil, replaces free-running Go scheduling with the
	// cooperative deterministic scheduler: threads hand off an execution
	// token at every sync/check point and the controller's strategy picks
	// who runs next. Report content for any fixed schedule is unchanged;
	// only the interleaving is controlled.
	Sched *sched.Controller

	// Metrics enables the per-site telemetry collector (read via
	// Runtime.TelemetrySnapshot). Off by default; when off the per-check
	// cost is a single nil comparison.
	Metrics bool
	// TraceCapacity, when positive, enables the structured event tracer
	// with a ring buffer of that many events (read via Runtime.Tracer).
	TraceCapacity int
	// Telemetry / Tracer / Counters, when non-nil, are shared instances
	// used instead of fresh ones — Explore passes the same collector and
	// spine to every schedule's runtime so metrics aggregate across the
	// whole exploration.
	Telemetry *telemetry.Collector
	Tracer    *telemetry.Tracer
	Counters  *telemetry.Counters

	// Engine selects the execution engine. The default (EngineAuto) runs
	// the register VM whenever the program carries a flat form and falls
	// back to the tree walker otherwise; both engines are behaviorally
	// identical (reports, stats, schedule traces) by construction and by
	// the differential oracle in engine_test.go.
	Engine Engine

	// Interrupt, when non-nil, makes the run stoppable from outside: once
	// the flag is set (Runtime.Interrupt sets it), every thread unwinds at
	// its next scheduling point without reporting, and Run returns
	// ErrInterrupted. Nil (the default) keeps the per-access cost at a
	// single nil comparison. See Runtime.Interrupt for the blocking-thread
	// guarantees.
	Interrupt *atomic.Bool
}

// Engine selects how compiled code executes.
type Engine int

const (
	// EngineAuto runs the VM when the program has a flat form, else the
	// tree walker.
	EngineAuto Engine = iota
	// EngineVM forces the register VM over the flat instruction form.
	EngineVM
	// EngineTree forces the recursive tree walker (kept for one release as
	// the differential baseline).
	EngineTree
)

func (e Engine) String() string {
	switch e {
	case EngineVM:
		return "vm"
	case EngineTree:
		return "tree"
	}
	return "auto"
}

// DefaultConfig returns a configuration adequate for the test programs and
// benchmarks.
func DefaultConfig() Config {
	return Config{
		StackCells: 1 << 14,
		HeapCells:  1 << 21,
		RC:         RCLevanoniPetrank,
		MaxReports: 64,
		SeedRand:   1,
	}
}

// ReportKind classifies runtime violation reports.
type ReportKind int

const (
	ReportRace ReportKind = iota
	ReportLock
	ReportOneRef
	ReportThreadFail
)

func (k ReportKind) String() string {
	switch k {
	case ReportRace:
		return "race"
	case ReportLock:
		return "lock"
	case ReportOneRef:
		return "oneref"
	case ReportThreadFail:
		return "fail"
	}
	return "?"
}

// Report is one runtime violation.
type Report struct {
	Kind ReportKind
	Msg  string
	Pos  token.Pos
	// conflict retains the shadow conflict behind a ReportRace so emission
	// can order reports with shadow.CompareConflicts.
	conflict *shadow.Conflict
}

func (r Report) String() string { return r.Msg }

// Stats aggregates execution counters for the evaluation harness.
type Stats struct {
	TotalAccesses   int64 // program loads+stores of cells
	DynamicAccesses int64 // accesses guarded by reader/writer-set checks
	LockChecks      int64
	Barriers        int64
	Collections     int64
	ShadowPages     int // distinct logical shadow pages touched
	HeapPages       int // distinct heap pages touched
	MaxThreads      int // peak concurrently live threads

	// Check-cache fast-path counters (zero unless Config.CheckCache).
	CheckCacheLookups int64
	CheckCacheHits    int64
	PageMemoHits      int64
}

// Runtime executes one program.
type Runtime struct {
	prog *ir.Program
	cfg  Config

	// useVM is the resolved engine choice: the register VM over the flat
	// form, or the recursive tree walker. Fixed at New so every thread of
	// one runtime executes on the same engine.
	useVM bool

	mem       []int64
	stackBase int64
	heapBase  int64

	shadow    *shadow.Shadow
	siteIDs   []uint32 // program site -> shadow site
	rc        refcount.Manager
	barriered []atomic.Uint32 // bitmap: cells ever stored through a barrier

	heapMu    sync.Mutex
	heapNext  int64
	freeLists map[int64][]int64 // size -> bases
	// limbo holds freed blocks whose reference counts have not yet drained
	// to zero: reuse is deferred (Heapsafe-style deallocation safety) so a
	// stale not-yet-nulled pointer in the freeing thread cannot alias a
	// recycled block and break the oneref check.
	limbo  []int64
	blocks map[int64]int64 // live blocks: base -> size
	// extents records every block ever carved from the heap (base -> size),
	// surviving free: reference counting is keyed by block base, and
	// deferred decrements of stale pointers must still resolve after the
	// block is freed and recycled (size-class reuse keeps extents stable).
	extents   map[int64]int64
	extentIdx []int64 // sorted bases; bump allocation appends in order
	heapPages map[int64]struct{}

	mutexes sync.Map // addr -> *sync.Mutex
	conds   sync.Map // addr -> *condState

	outMu sync.Mutex
	out   io.Writer

	tidPool    chan int
	handles    sync.Map // handle -> *threadHandle
	nextHandle atomic.Int64
	wg         sync.WaitGroup

	reportMu  sync.Mutex
	reports   []Report
	reportSet map[string]bool

	// counters is the always-on atomic spine (never nil); tel and tracer
	// are the opt-in per-site collector and event stream (usually nil).
	counters    *telemetry.Counters
	tel         *telemetry.Collector
	tracer      *telemetry.Tracer
	shadowRev   []int    // shadow site id -> program site (sink attribution)
	skeyTids    sync.Map // scheduler key -> tid, for trace decision lanes
	liveThreads atomic.Int32

	// intr is Config.Interrupt (nil when the run is not interruptible);
	// interrupted records that at least one thread actually unwound on it.
	intr        *atomic.Bool
	interrupted atomic.Bool

	ctl *sched.Controller // nil: free-running Go scheduler
}

type condState struct {
	mu   sync.Mutex
	cond *sync.Cond
	lock int64 // the ShC mutex this cond is paired with (0 until first wait)
}

type threadHandle struct {
	tid  int
	skey int // scheduler task key (0 when free-running)
	done chan struct{}
}

// New prepares a runtime for prog.
func New(prog *ir.Program, cfg Config) *Runtime {
	if cfg.StackCells == 0 {
		cfg.StackCells = DefaultConfig().StackCells
	}
	if cfg.HeapCells == 0 {
		cfg.HeapCells = DefaultConfig().HeapCells
	}
	if cfg.MaxReports == 0 {
		cfg.MaxReports = 64
	}
	stackBase := prog.StaticSize
	heapBase := stackBase + int64(shadow.MaxThreads)*int64(cfg.StackCells)
	memCells := heapBase + int64(cfg.HeapCells)

	rt := &Runtime{
		prog:      prog,
		cfg:       cfg,
		mem:       make([]int64, memCells),
		stackBase: stackBase,
		heapBase:  heapBase,
		heapNext:  alignGranule(heapBase),
		freeLists: make(map[int64][]int64),
		blocks:    make(map[int64]int64),
		extents:   make(map[int64]int64),
		heapPages: make(map[int64]struct{}),
		tidPool:   make(chan int, shadow.MaxThreads),
		reportSet: make(map[string]bool),
		out:       cfg.Stdout,
		ctl:       cfg.Sched,
		intr:      cfg.Interrupt,
		useVM:     prog.Flat != nil && cfg.Engine != EngineTree,
	}
	if rt.out == nil {
		rt.out = io.Discard
	}
	// Telemetry: the counter spine is always live; the collector and
	// tracer only on request (shared instances take precedence so Explore
	// can aggregate across schedules).
	rt.counters = cfg.Counters
	if rt.counters == nil {
		rt.counters = new(telemetry.Counters)
	}
	rt.tel = cfg.Telemetry
	if rt.tel == nil && cfg.Metrics {
		rt.tel = telemetry.NewCollector(siteInfos(prog))
	}
	rt.tracer = cfg.Tracer
	if rt.tracer == nil && cfg.TraceCapacity > 0 {
		rt.tracer = telemetry.NewTracer(cfg.TraceCapacity, siteInfos(prog))
	}
	var sink shadow.CheckSink
	if rt.tel != nil || rt.tracer != nil {
		sink = &cacheSink{rt: rt}
	}
	rt.shadow = shadow.NewWithOptions(int(memCells), shadow.Options{
		Encoding:   cfg.ShadowEncoding,
		CheckCache: cfg.CheckCache,
		Sink:       sink,
	})
	for t := 1; t <= shadow.MaxThreads; t++ {
		rt.tidPool <- t
	}
	// Intern report sites into the shadow.
	rt.siteIDs = make([]uint32, len(prog.Sites))
	maxSID := uint32(0)
	for i, s := range prog.Sites {
		rt.siteIDs[i] = rt.shadow.InternSite(shadow.Site{LValue: s.LValue, Pos: s.Pos})
		if rt.siteIDs[i] > maxSID {
			maxSID = rt.siteIDs[i]
		}
	}
	if sink != nil && len(prog.Sites) > 0 {
		// The shadow interns sites with its own dedupe, so several program
		// sites can share one shadow id; attribute cache outcomes to the
		// first program site that produced the id.
		rt.shadowRev = make([]int, maxSID+1)
		for i := range rt.shadowRev {
			rt.shadowRev[i] = -1
		}
		for i, id := range rt.siteIDs {
			if rt.shadowRev[id] < 0 {
				rt.shadowRev[id] = i
			}
		}
	}
	if rt.tracer != nil && rt.ctl != nil {
		rt.ctl.SetObserver(schedObs{rt: rt})
	}
	switch cfg.RC {
	case RCLevanoniPetrank:
		lp := refcount.NewLP(int(memCells), rt.resolveObj)
		lp.SetMemory(rt)
		rt.rc = lp
	case RCNaive:
		rt.rc = refcount.NewNaive(rt.resolveObj)
	}
	if rt.rc != nil {
		rt.barriered = make([]atomic.Uint32, (memCells+31)/32)
	}
	// Globals and strings.
	for _, init := range prog.Inits {
		rt.mem[init.Addr] = rt.constValue(init.Val)
	}
	for i, s := range prog.Strings {
		base := prog.StringAddr[i]
		for j := 0; j < len(s); j++ {
			rt.mem[base+int64(j)] = int64(s[j])
		}
	}
	return rt
}

func (rt *Runtime) constValue(e ir.Expr) int64 {
	switch e := e.(type) {
	case *ir.Const:
		return e.V
	case *ir.StrAddr:
		return rt.prog.StringAddr[e.Idx]
	}
	return 0
}

func alignGranule(a int64) int64 {
	g := int64(shadow.GranuleCells)
	return (a + g - 1) / g * g
}

// LoadCell implements refcount.Memory.
func (rt *Runtime) LoadCell(addr int64) int64 {
	if addr < 0 || addr >= int64(len(rt.mem)) {
		return 0
	}
	return atomic.LoadInt64(&rt.mem[addr])
}

// resolveObj maps a pointer value to the base of the heap block carved at
// that address (0 if not heap). Extents persist across free so deferred
// reference-count updates for stale pointers still resolve.
func (rt *Runtime) resolveObj(ptr int64) int64 {
	if ptr < rt.heapBase || ptr >= int64(len(rt.mem)) {
		return 0
	}
	rt.heapMu.Lock()
	defer rt.heapMu.Unlock()
	i := sort.Search(len(rt.extentIdx), func(i int) bool { return rt.extentIdx[i] > ptr })
	if i == 0 {
		return 0
	}
	base := rt.extentIdx[i-1]
	if size, ok := rt.extents[base]; ok && ptr < base+size {
		return base
	}
	return 0
}

// malloc allocates a zeroed block of n cells aligned to the shadow granule
// (SharC aligns malloc to 16 bytes to limit false sharing, §4.5).
func (rt *Runtime) malloc(n int64) (int64, bool) {
	if n < 1 {
		n = 1
	}
	n = alignGranule(n)
	rt.heapMu.Lock()
	defer rt.heapMu.Unlock()
	if len(rt.freeLists[n]) == 0 && len(rt.limbo) > 0 {
		rt.sweepLimboLocked()
	}
	if lst := rt.freeLists[n]; len(lst) > 0 {
		base := lst[len(lst)-1]
		rt.freeLists[n] = lst[:len(lst)-1]
		rt.blocks[base] = n
		rt.touchHeapPagesLocked(base, n)
		for i := int64(0); i < n; i++ {
			atomic.StoreInt64(&rt.mem[base+i], 0)
		}
		return base, true
	}
	if rt.heapNext+n > int64(len(rt.mem)) {
		return 0, false
	}
	base := rt.heapNext
	rt.heapNext += n
	rt.blocks[base] = n
	rt.extents[base] = n
	rt.extentIdx = append(rt.extentIdx, base) // heapNext grows: stays sorted
	rt.touchHeapPagesLocked(base, n)
	return base, true
}

// touchHeapPagesLocked records heap pages for the pagefault metric (512
// cells = 4096 bytes per page).
func (rt *Runtime) touchHeapPagesLocked(base, n int64) {
	for p := base / 512; p <= (base+n-1)/512; p++ {
		rt.heapPages[p] = struct{}{}
	}
}

// blockSize returns the size of the block at base, or 0.
func (rt *Runtime) blockSize(base int64) int64 {
	rt.heapMu.Lock()
	defer rt.heapMu.Unlock()
	return rt.blocks[base]
}

// beginFree unpublishes the block at base, returning its size (0 if it is
// not a live block). The block is neither live nor reusable until
// finishFree, so the freeing thread can clear its cells without racing a
// concurrent malloc.
func (rt *Runtime) beginFree(base int64) int64 {
	rt.heapMu.Lock()
	defer rt.heapMu.Unlock()
	size, ok := rt.blocks[base]
	if !ok {
		return 0
	}
	delete(rt.blocks, base)
	return size
}

// finishFree makes a block freed by beginFree reusable. With reference
// counting active the block goes to limbo until its count drains to zero;
// without it the block is immediately reusable.
func (rt *Runtime) finishFree(base, size int64) {
	rt.heapMu.Lock()
	defer rt.heapMu.Unlock()
	if rt.rc != nil {
		rt.limbo = append(rt.limbo, base)
	} else {
		rt.freeLists[size] = append(rt.freeLists[size], base)
	}
}

// sweepLimboLocked moves freed blocks whose reference counts (as of the
// last collection) have drained to zero onto the free lists.
func (rt *Runtime) sweepLimboLocked() {
	kept := rt.limbo[:0]
	for _, base := range rt.limbo {
		if rt.rc.CurrentCount(base) <= 0 {
			size := rt.extents[base]
			rt.freeLists[size] = append(rt.freeLists[size], base)
		} else {
			kept = append(kept, base)
		}
	}
	rt.limbo = kept
}

// report records a violation, deduplicating by message.
func (rt *Runtime) report(kind ReportKind, pos token.Pos, msg string) {
	rt.reportConflict(kind, pos, msg, nil)
}

// reportConflict is report plus the originating shadow conflict, kept so
// emission can order race reports deterministically.
func (rt *Runtime) reportConflict(kind ReportKind, pos token.Pos, msg string, c *shadow.Conflict) {
	rt.reportMu.Lock()
	defer rt.reportMu.Unlock()
	if len(rt.reports) >= rt.cfg.MaxReports {
		return
	}
	key := msg
	if rt.reportSet[key] {
		return
	}
	rt.reportSet[key] = true
	rt.reports = append(rt.reports, Report{Kind: kind, Msg: msg, Pos: pos, conflict: c})
}

// Reports returns the violations collected during the run, in a
// deterministic emission order: by source site, then (for conflicts)
// shadow.CompareConflicts — accessing thread, prior thread, address — then
// by message. Threads hit violations in whatever order they are scheduled;
// sorting here makes output comparable across runs and scheduling modes.
func (rt *Runtime) Reports() []Report {
	rt.reportMu.Lock()
	out := make([]Report, len(rt.reports))
	copy(out, rt.reports)
	rt.reportMu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.conflict != nil && b.conflict != nil {
			if c := shadow.CompareConflicts(a.conflict, b.conflict); c != 0 {
				return c < 0
			}
		}
		return a.Msg < b.Msg
	})
	return out
}

// ReportsOfKind filters reports by kind.
func (rt *Runtime) ReportsOfKind(k ReportKind) []Report {
	var out []Report
	for _, r := range rt.Reports() {
		if r.Kind == k {
			out = append(out, r)
		}
	}
	return out
}

// Stats returns aggregated counters; valid after Run. It is a view over
// the telemetry counter spine plus the substrates' own gauges, kept for
// the evaluation harness's existing call sites.
func (rt *Runtime) Stats() Stats {
	c := rt.counters
	s := Stats{
		TotalAccesses:   c.TotalAccesses.Load(),
		DynamicAccesses: c.DynamicChecks.Load(),
		LockChecks:      c.LockChecks.Load(),
		Barriers:        c.Barriers.Load(),
		MaxThreads:      int(c.MaxThreads.Load()),
	}
	s.ShadowPages = rt.shadow.PagesTouched()
	cs := rt.shadow.CacheStats()
	s.CheckCacheLookups = cs.Lookups
	s.CheckCacheHits = cs.Hits
	s.PageMemoHits = cs.PageMemoHits
	rt.heapMu.Lock()
	s.HeapPages = len(rt.heapPages)
	rt.heapMu.Unlock()
	if rt.rc != nil {
		s.Collections = rt.rc.Collections()
	}
	return s
}

// addThreadStats flushes a finished thread's private tallies into the
// atomic spine. Per-thread tallies plus one atomic add per counter at
// thread exit keep the hot path free of shared-cacheline traffic.
func (rt *Runtime) addThreadStats(t *thread) {
	c := rt.counters
	c.TotalAccesses.Add(t.nAccess)
	c.DynamicChecks.Add(t.nDynamic)
	c.LockChecks.Add(t.nLockChk)
	c.Barriers.Add(t.nBarrier)
	c.ElidedChecks.Add(t.nElided)
	telemetry.StoreMax(&c.MaxLocksHeld, int64(t.locks.Peak()))
}

// Run executes the program's main function and waits for every spawned
// thread to finish (the benchmark programs join their workers; waiting
// keeps stray goroutines out of the host process). It returns main's exit
// value.
func (rt *Runtime) Run() (int64, error) {
	mainIdx := rt.prog.Main
	tid := <-rt.tidPool
	t := rt.newThread(tid)
	if rt.ctl != nil {
		t.skey = rt.ctl.Register()
		rt.bindKey(t.skey, t.tid)
		rt.ctl.Begin(t.skey)
	}
	rt.trackLive(1)
	ret := int64(0)
	func() {
		defer rt.threadEpilogue(t)
		ret = t.invoke(mainIdx, nil)
	}()
	rt.wg.Wait()
	if rt.interrupted.Load() {
		return ret, ErrInterrupted
	}
	if fails := rt.ReportsOfKind(ReportThreadFail); len(fails) > 0 {
		return ret, fmt.Errorf("%s", fails[0].Msg)
	}
	return ret, nil
}

// ErrInterrupted is returned by Run when the execution was cut short by
// Runtime.Interrupt rather than finishing on its own.
var ErrInterrupted = errors.New("interrupted: the run was stopped before completion")

// Interrupt stops an in-flight Run from another goroutine: it raises the
// Config.Interrupt flag (threads unwind silently at their next scheduling
// point — a shared-memory access or a synchronization operation) and,
// under the cooperative scheduler, aborts the controller so threads parked
// waiting for the execution token or blocked on modeled locks, condition
// variables, and joins are all released immediately. The teardown is
// reliable for scheduled runs (Config.Sched non-nil, the serve layer's
// default); for free-running programs it is best-effort — a thread parked
// in a Go-level mutex or condition wait is only interrupted once it wakes
// on its own. Safe to call at any time, including after Run returned.
func (rt *Runtime) Interrupt() {
	if rt.intr != nil {
		rt.intr.Store(true)
	}
	if rt.ctl != nil {
		rt.ctl.Abort()
	}
}

// Interrupted reports whether at least one thread unwound on an
// Interrupt (the condition under which Run returns ErrInterrupted).
func (rt *Runtime) Interrupted() bool { return rt.interrupted.Load() }

// EngineUsed reports the engine the runtime resolved to at New: EngineVM
// or EngineTree (never EngineAuto).
func (rt *Runtime) EngineUsed() Engine {
	if rt.useVM {
		return EngineVM
	}
	return EngineTree
}

func (rt *Runtime) trackLive(d int32) {
	n := rt.liveThreads.Add(d)
	if d > 0 {
		telemetry.StoreMax(&rt.counters.MaxThreads, int64(n))
	}
}

// threadEpilogue runs when a thread finishes: recover failures, clear its
// shadow bits, recycle its id.
func (rt *Runtime) threadEpilogue(t *thread) {
	interrupted := false
	if r := recover(); r != nil {
		switch f := r.(type) {
		case threadFailure:
			rt.report(ReportThreadFail, f.pos, fmt.Sprintf("%s: thread %d failed: %s", f.pos, t.tid, f.msg))
		case interruptPanic:
			// Torn down by Runtime.Interrupt: unwind without reporting —
			// the locks this thread still holds are teardown debris, not a
			// program error. Free-running threads hold real Go mutexes, so
			// release them here or siblings parked in mu.Lock() would never
			// reach their own interrupt check (modeled locks under a
			// controller are unwedged by Controller.Abort instead).
			rt.interrupted.Store(true)
			interrupted = true
			if rt.ctl == nil {
				for _, addr := range t.locks.Snapshot() {
					if v, ok := rt.mutexes.Load(addr); ok {
						v.(*sync.Mutex).Unlock()
					}
				}
			}
		default:
			panic(r)
		}
	}
	if !interrupted && t.locks.Count() > 0 {
		rt.report(ReportLock, token.Pos{}, fmt.Sprintf("thread %d exited holding %d lock(s)", t.tid, t.locks.Count()))
	}
	t.locks.Clear()
	if rt.cfg.Observer != nil {
		rt.cfg.Observer.ThreadEnd(t.tid)
	}
	rt.tracer.Append(telemetry.KindThreadEnd, t.tid, -1, 0, 0)
	rt.addThreadStats(t)
	rt.shadow.ClearThread(t.tid)
	rt.trackLive(-1)
	rt.tidPool <- t.tid
	if rt.ctl != nil {
		// After the tid goes back to the pool, so a spawner woken by this
		// exit (AwaitExit) finds a free thread id.
		rt.ctl.Exit(t.skey)
	}
}

// threadFailure aborts a thread (the formal semantics' "fail" state).
type threadFailure struct {
	msg string
	pos token.Pos
}

// output writes program output.
func (rt *Runtime) output(s string) {
	rt.outMu.Lock()
	defer rt.outMu.Unlock()
	io.WriteString(rt.out, s)
}

// FormatReports renders all reports, one per line block.
func (rt *Runtime) FormatReports() string {
	var sb strings.Builder
	for _, r := range rt.Reports() {
		sb.WriteString(r.Msg)
		sb.WriteByte('\n')
	}
	return sb.String()
}
