package interp

// The register VM: a dispatch loop over the flat instruction form
// (ir.FlatFunc). It shares every runtime substrate with the tree walker —
// applyCheck, observe, the builtin do* bodies, scastAt, frame push/pop —
// so the two engines differ only in how they sequence those calls, and
// the linearize pass emits instructions in exactly the tree walker's
// evaluation order. Reports, stats, telemetry, and recorded schedule
// traces are byte-identical across engines (pinned by engine_test.go).

import (
	"strings"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/sched"
)

// runFlat executes function fnIdx's flat form with the given argument
// values in a fresh frame and register window, and returns its result.
func (t *thread) runFlat(fnIdx int, args []int64) int64 {
	rt := t.rt
	fn := rt.prog.Funcs[fnIdx]
	ff := rt.prog.Flat.Funcs[fnIdx]
	frameBase, prevFrame := t.pushFrame(fn, args)
	t.retVal = 0

	base := len(t.regs)
	need := base + ff.NumRegs
	if cap(t.regs) < need {
		grown := make([]int64, need, need+64)
		copy(grown, t.regs)
		t.regs = grown
	} else {
		t.regs = t.regs[:need]
	}
	regs := t.regs[base:need]
	for i := range regs {
		regs[i] = 0
	}

	code := ff.Code
	// Hoisted runtime state for the fused access handlers. rt.mem is
	// allocated once and never grows, and the region bounds and observer
	// are fixed for the run, so none of these can go stale mid-dispatch.
	mem := rt.mem
	memLen := int64(len(mem))
	stackBase, heapBase := rt.stackBase, rt.heapBase
	obs := rt.cfg.Observer
	checks := ff.Checks
	var ret int64
	pc := 0
dispatch:
	for {
		in := &code[pc]
		pc++
		switch in.Op {
		case ir.FNop, ir.FKill:

		case ir.FConst:
			regs[in.A] = in.Imm
		case ir.FStr:
			regs[in.A] = rt.prog.StringAddr[in.B]
		case ir.FFrame:
			regs[in.A] = t.frame + int64(in.B)
		case ir.FFunc:
			regs[in.A] = ir.EncodeFunc(int(in.B))
		case ir.FMove:
			regs[in.A] = regs[in.B]

		case ir.FAdd:
			regs[in.A] = regs[in.B] + regs[in.C]
		case ir.FSub:
			regs[in.A] = regs[in.B] - regs[in.C]
		case ir.FMul:
			regs[in.A] = regs[in.B] * regs[in.C]
		case ir.FDiv:
			if regs[in.C] == 0 {
				t.fail(ff.PosTab[in.Imm], "division by zero")
			}
			regs[in.A] = regs[in.B] / regs[in.C]
		case ir.FMod:
			if regs[in.C] == 0 {
				t.fail(ff.PosTab[in.Imm], "modulo by zero")
			}
			regs[in.A] = regs[in.B] % regs[in.C]
		case ir.FAnd:
			regs[in.A] = regs[in.B] & regs[in.C]
		case ir.FOr:
			regs[in.A] = regs[in.B] | regs[in.C]
		case ir.FXor:
			regs[in.A] = regs[in.B] ^ regs[in.C]
		case ir.FShl:
			regs[in.A] = regs[in.B] << uint(regs[in.C]&63)
		case ir.FShr:
			regs[in.A] = regs[in.B] >> uint(regs[in.C]&63)
		case ir.FEq:
			regs[in.A] = boolVal(regs[in.B] == regs[in.C])
		case ir.FNe:
			regs[in.A] = boolVal(regs[in.B] != regs[in.C])
		case ir.FLt:
			regs[in.A] = boolVal(regs[in.B] < regs[in.C])
		case ir.FLe:
			regs[in.A] = boolVal(regs[in.B] <= regs[in.C])
		case ir.FGt:
			regs[in.A] = boolVal(regs[in.B] > regs[in.C])
		case ir.FGe:
			regs[in.A] = boolVal(regs[in.B] >= regs[in.C])

		case ir.FNeg:
			regs[in.A] = -regs[in.B]
		case ir.FNot:
			regs[in.A] = boolVal(regs[in.B] == 0)
		case ir.FBitNot:
			regs[in.A] = ^regs[in.B]
		case ir.FSetNZ:
			regs[in.A] = boolVal(regs[in.B] != 0)

		case ir.FJmp:
			pc = int(in.A)
		case ir.FJmpZ:
			if regs[in.A] == 0 {
				pc = int(in.B)
			}
		case ir.FJmpNZ:
			if regs[in.A] != 0 {
				pc = int(in.B)
			}
		case ir.FJmpEqImm:
			if regs[in.A] == in.Imm {
				pc = int(in.B)
			}

		case ir.FYield:
			t.checkAddr(regs[in.A], ff.PosTab[in.Imm])
			t.countAccess(regs[in.A])
		case ir.FChkRead, ir.FChkElided:
			t.applyCheck(regs[in.A], *ff.Checks[in.B].Orig, false)
		case ir.FChkWrite:
			t.applyCheck(regs[in.A], *ff.Checks[in.B].Orig, true)
		case ir.FChkLock:
			fc := &ff.Checks[in.B]
			t.applyCheck(regs[in.A], *fc.Orig, fc.Write)
		case ir.FLoad:
			addr := regs[in.B]
			t.observe(addr, false, int(in.C))
			regs[in.A] = t.loadRaw(addr)
		case ir.FStore:
			addr := regs[in.A]
			t.observe(addr, true, int(in.C))
			t.storeRaw(addr, regs[in.B])
		case ir.FBarrier:
			if rt.rc != nil {
				addr := regs[in.A]
				old := t.loadRaw(addr)
				rt.rc.Barrier(t.tid, addr, old, regs[in.B])
				t.markBarriered(addr)
				t.nBarrier++
			}

		// The fused access superinstructions run the decomposed protocol —
		// checkAddr, countAccess, applyCheck, observe, raw op — inlined in
		// exactly that order; the slow paths delegate to the shared
		// methods so failure messages and side effects stay identical.
		case ir.FLoadAcc:
			addr := regs[in.B]
			if addr <= 0 || addr >= memLen {
				t.checkAddr(addr, ff.PosTab[in.Imm])
			}
			if addr < stackBase || addr >= heapBase {
				t.nAccess++
				t.schedPoint(sched.PointCheck)
			}
			if obs != nil {
				obs.Access(t.tid, addr, false, t.locks, int(in.C))
			}
			regs[in.A] = atomic.LoadInt64(&mem[addr])
		case ir.FLoadChk:
			addr := regs[in.B]
			if addr <= 0 || addr >= memLen {
				t.checkAddr(addr, ff.PosTab[in.Imm])
			}
			if addr < stackBase || addr >= heapBase {
				t.nAccess++
				t.schedPoint(sched.PointCheck)
			}
			fc := &checks[in.C]
			t.applyCheck(addr, *fc.Orig, false)
			if obs != nil {
				obs.Access(t.tid, addr, false, t.locks, fc.Orig.Site)
			}
			regs[in.A] = atomic.LoadInt64(&mem[addr])
		case ir.FStoreAcc:
			addr := regs[in.A]
			if addr <= 0 || addr >= memLen {
				t.checkAddr(addr, ff.PosTab[in.Imm])
			}
			if addr < stackBase || addr >= heapBase {
				t.nAccess++
				t.schedPoint(sched.PointCheck)
			}
			if obs != nil {
				obs.Access(t.tid, addr, true, t.locks, int(in.C))
			}
			atomic.StoreInt64(&mem[addr], regs[in.B])
		case ir.FStoreChk:
			addr := regs[in.A]
			if addr <= 0 || addr >= memLen {
				t.checkAddr(addr, ff.PosTab[in.Imm])
			}
			if addr < stackBase || addr >= heapBase {
				t.nAccess++
				t.schedPoint(sched.PointCheck)
			}
			fc := &checks[in.C]
			t.applyCheck(addr, *fc.Orig, fc.Write)
			if obs != nil {
				obs.Access(t.tid, addr, true, t.locks, fc.Orig.Site)
			}
			atomic.StoreInt64(&mem[addr], regs[in.B])

		case ir.FScast:
			regs[in.A] = t.scastAt(regs[in.B], ff.Scasts[in.C])

		case ir.FCall:
			ci := &ff.Calls[in.B]
			callArgs := make([]int64, len(ci.Args))
			for i, r := range ci.Args {
				callArgs[i] = regs[r]
			}
			idx := ci.Target
			if idx < 0 {
				v := regs[ci.FnReg]
				idx = ir.DecodeFunc(v)
				if idx < 0 || idx >= len(rt.prog.Funcs) {
					t.fail(ci.Pos, "call through invalid function pointer 0x%x", v)
				}
			}
			callee := rt.prog.Funcs[idx]
			if len(callArgs) != callee.NumParams {
				t.fail(ci.Pos, "call to %s with %d args, want %d", callee.Name, len(callArgs), callee.NumParams)
			}
			v := t.runFlat(idx, callArgs)
			// The nested frame may have grown (and reallocated) the
			// register stack: re-derive this frame's window.
			regs = t.regs[base:need]
			regs[in.A] = v

		case ir.FBuiltin:
			regs[in.A] = t.flatBuiltin(&ff.Builtins[in.B], regs)

		case ir.FCString:
			bi := &ff.Builtins[in.B]
			t.cstrs = append(t.cstrs, t.readCString(regs[in.A], bi.E.ArgChecks[in.C], bi.E.Pos))

		case ir.FRet:
			if in.Imm != 0 {
				// Implicit fall-off-the-end return: mirror the tree
				// walker, whose retVal carries the most recently completed
				// call's value.
				ret = t.retVal
			} else {
				ret = regs[in.A]
			}
			break dispatch

		default:
			t.fail(fn.Pos, "internal: vm opcode %v", in.Op)
		}
	}

	t.regs = t.regs[:base]
	t.popFrame(fn, frameBase, prevFrame)
	t.retVal = ret
	return ret
}

// flatBuiltin dispatches a builtin for the VM: argument values come from
// registers, C strings from the thread's pending string stack (pushed by
// FCString in the tree walker's interleaving), and the bodies are the
// engine-shared do* methods.
func (t *thread) flatBuiltin(bi *ir.BuiltinInfo, regs []int64) int64 {
	e := bi.E
	arg := func(i int) int64 { return regs[bi.Args[i]] }
	strs := t.cstrs
	t.cstrs = t.cstrs[:0]
	switch e.Name {
	case "malloc":
		return t.doMalloc(arg(0), e.Pos)
	case "free":
		return t.doFree(arg(0), e.Pos)
	case "spawn":
		return t.doSpawn(arg(0), arg(1), e.Pos)
	case "join":
		return t.doJoin(arg(0), e.Pos)
	case "mutexNew":
		return t.doMutexNew(e.Pos)
	case "condNew":
		return t.doCondNew(e.Pos)
	case "mutexLock":
		return t.doMutexLock(arg(0), e.Pos)
	case "mutexUnlock":
		return t.doMutexUnlock(arg(0), e.Pos)
	case "condWait":
		return t.doCondWait(arg(0), arg(1), e.Pos)
	case "condSignal", "condBroadcast":
		return t.doCondSignal(arg(0), e.Name == "condBroadcast", e.Pos)
	case "print":
		rest := make([]int64, 0, len(bi.Args)-1)
		for i := 1; i < len(bi.Args); i++ {
			rest = append(rest, arg(i))
		}
		return t.doPrint(strs[0], rest)
	case "printInt":
		return t.doPrintInt(arg(0))
	case "assert":
		return t.doAssert(arg(0), e.Pos)
	case "rand":
		return t.rand()
	case "srand":
		return t.doSrand(arg(0))
	case "sleepMs":
		return t.doSleepMs(arg(0))
	case "yield":
		return t.doYield()
	case "memset":
		return t.doMemset(arg(0), arg(1), arg(2), e)
	case "memcpy":
		return t.doMemcpy(arg(0), arg(1), arg(2), e)
	case "strlen":
		return int64(len(strs[0]))
	case "strcmp":
		return int64(strings.Compare(strs[0], strs[1]))
	case "strcpy":
		return t.doStrcpy(arg(0), arg(1), e)
	case "shcRecycle":
		return t.doRecycle(arg(0), arg(1))
	case "strstr":
		return int64(strings.Index(strs[0], strs[1]))
	}
	t.fail(e.Pos, "internal: unknown builtin %q", e.Name)
	return 0
}
