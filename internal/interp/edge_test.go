package interp_test

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/shadow"
)

func TestCondBroadcastWakesAll(t *testing.T) {
	src := `
struct gate {
	mutex *m;
	cond *cv;
	int locked(m) open;
	int locked(m) through;
};
void *waiter(void *d) {
	struct gate *g = d;
	mutexLock(g->m);
	while (!g->open) condWait(g->cv, g->m);
	g->through = g->through + 1;
	mutexUnlock(g->m);
	return NULL;
}
int main(void) {
	struct gate *g = malloc(sizeof(struct gate));
	g->m = mutexNew();
	g->cv = condNew();
	mutexLock(g->m);
	g->open = 0;
	g->through = 0;
	mutexUnlock(g->m);
	struct gate dynamic *gd = SCAST(struct gate dynamic *, g);
	int h1 = spawn(waiter, gd);
	int h2 = spawn(waiter, gd);
	int h3 = spawn(waiter, gd);
	sleepMs(5);
	mutexLock(gd->m);
	gd->open = 1;
	condBroadcast(gd->cv);
	mutexUnlock(gd->m);
	join(h1);
	join(h2);
	join(h3);
	mutexLock(gd->m);
	int n = gd->through;
	mutexUnlock(gd->m);
	return n;
}
`
	rt, ret, _ := exec(t, src)
	if ret != 3 {
		t.Fatalf("through = %d, want 3", ret)
	}
	for _, r := range rt.Reports() {
		t.Errorf("report: %s", r)
	}
}

func TestSwitchFallthroughRuntime(t *testing.T) {
	_, ret, _ := exec(t, `
int f(int n) {
	int acc = 0;
	switch (n) {
	case 1:
		acc += 1;
	case 2:
		acc += 10;
		break;
	case 3:
		acc += 100;
	default:
		acc += 1000;
	}
	return acc;
}
int main(void) { return f(1) * 1000000 + f(3) * 1000 + f(9); }
`)
	// f(1): 1+10 = 11 (fallthrough then break); f(3): 100+1000 = 1100;
	// f(9): default = 1000.
	if ret != 11*1000000+1100*1000+1000 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestStackOverflowCaught(t *testing.T) {
	cfg := interp.DefaultConfig()
	cfg.StackCells = 256
	_, _, err := core.BuildAndRun(`
int recurse(int n) { return recurse(n + 1); }
int main(void) { return recurse(0); }
`, compile.DefaultOptions(), cfg)
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("err = %v", err)
	}
}

func TestOutOfMemoryCaught(t *testing.T) {
	cfg := interp.DefaultConfig()
	cfg.HeapCells = 1024
	_, _, err := core.BuildAndRun(`
int main(void) {
	while (1) {
		int *p = malloc(512);
		p[0] = 1;
	}
	return 0;
}
`, compile.DefaultOptions(), cfg)
	if err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("err = %v", err)
	}
}

func TestFreeInvalidPointerCaught(t *testing.T) {
	cfg := interp.DefaultConfig()
	_, _, err := core.BuildAndRun(`
int main(void) {
	int *p = malloc(8);
	free(p + 1);
	return 0;
}
`, compile.DefaultOptions(), cfg)
	if err == nil || !strings.Contains(err.Error(), "free of invalid pointer") {
		t.Fatalf("err = %v", err)
	}
}

func TestDoubleFreeCaught(t *testing.T) {
	cfg := interp.DefaultConfig()
	_, _, err := core.BuildAndRun(`
int main(void) {
	int *p = malloc(8);
	int *q = p;
	free(p);
	free(q);
	return 0;
}
`, compile.DefaultOptions(), cfg)
	if err == nil || !strings.Contains(err.Error(), "free of invalid pointer") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnlockUnheldReported(t *testing.T) {
	rt, _, _ := exec(t, `
int main(void) {
	mutex *m = mutexNew();
	mutexUnlock(m);
	return 0;
}
`)
	locks := rt.ReportsOfKind(interp.ReportLock)
	if len(locks) == 0 {
		t.Fatal("expected unlock-unheld report")
	}
}

func TestThreadExitHoldingLockReported(t *testing.T) {
	src := `
void *worker(void *d) {
	mutex *m = mutexNew();
	mutexLock(m);
	return NULL;
}
int main(void) {
	int h = spawn(worker, malloc(2));
	join(h);
	return 0;
}
`
	rt, _, _ := exec(t, src)
	found := false
	for _, r := range rt.ReportsOfKind(interp.ReportLock) {
		if strings.Contains(r.Msg, "exited holding") {
			found = true
		}
	}
	if !found {
		t.Fatal("expected exited-holding-lock report")
	}
}

func TestCondWaitWithoutMutexReported(t *testing.T) {
	rt, _, _ := exec(t, `
int racy poked;
void *poker(void *d) {
	while (!poked) yield();
	sleepMs(1);
	cond racy *c = d;
	condSignal(c);
	return NULL;
}
int main(void) {
	cond *c = condNew();
	mutex *m = mutexNew();
	int h = spawn(poker, c);
	mutexLock(m);
	poked = 1;
	condWait(c, m);
	mutexUnlock(m);
	join(h);
	return 0;
}
`)
	_ = rt // waiting correctly here; just ensure no deadlock and clean exit
}

func TestSpawnThroughFunctionPointerField(t *testing.T) {
	src := `
struct task { void *(*run)(void dynamic *arg); };
int racy ran;
void *doit(void *d) { ran = 1; return NULL; }
int main(void) {
	struct task *t = malloc(sizeof(struct task));
	t->run = doit;
	int h = spawn(t->run, malloc(2));
	join(h);
	return ran;
}
`
	_, ret, _ := exec(t, src)
	if ret != 1 {
		t.Fatalf("ran = %d", ret)
	}
}

func TestShadowEncodingStateEndToEnd(t *testing.T) {
	// The alternative encoding finds the same deterministic race.
	src := `
int racy phase;
void *writerA(void *d) {
	int *p = d;
	p[0] = 1;
	phase = 1;
	while (phase < 2) yield();
	return NULL;
}
void *writerB(void *d) {
	int *p = d;
	while (phase < 1) yield();
	p[0] = 2;
	phase = 2;
	return NULL;
}
int main(void) {
	int *buf = malloc(sizeof(int));
	int dynamic *shared = SCAST(int dynamic *, buf);
	int t1 = spawn(writerA, shared);
	int t2 = spawn(writerB, shared);
	join(t1);
	join(t2);
	return 0;
}
`
	cfg := interp.DefaultConfig()
	cfg.ShadowEncoding = shadow.EncodingState
	rt, _, err := core.BuildAndRun(src, compile.DefaultOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.ReportsOfKind(interp.ReportRace)) == 0 {
		t.Fatal("state encoding must detect the race")
	}
}

func TestNegativeModuloAndDivision(t *testing.T) {
	_, ret, _ := exec(t, `
int main(void) {
	int a = -7 % 3;
	int b = -7 / 2;
	return (a == -1) + (b == -3) * 2;
}
`)
	_ = ret
}

func TestCharTruncationSemantics(t *testing.T) {
	// Cells are int64: ShC chars are not truncated at 8 bits (documented
	// divergence from C); programs use explicit masking when they care.
	_, ret, _ := exec(t, `
int main(void) {
	char *c = malloc(1);
	c[0] = 300;
	return c[0] & 255;
}
`)
	if ret != 44 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	_, ret, _ := exec(t, `
int g;
int bump(void) { g = g + 1; return 1; }
int main(void) {
	g = 0;
	int a = 0 && bump();
	int b = 1 || bump();
	return g * 10 + a + b;
}
`)
	if ret != 1 {
		t.Fatalf("short circuit: ret = %d, want 1 (g must stay 0)", ret)
	}
}

func TestTernaryAndComparisons(t *testing.T) {
	_, ret, _ := exec(t, `
int main(void) {
	int x = 5;
	int y = x > 3 ? (x <= 5 ? 10 : 20) : 30;
	return y + (x != 5) + (x == 5) * 2;
}
`)
	if ret != 12 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestMaxReportsCap(t *testing.T) {
	// A very racy program must not accumulate unbounded reports.
	src := `
int racy phase;
void *writerA(void *d) {
	int *p = d;
	for (int i = 0; i < 32; i++) p[i*2] = 1;
	phase = 1;
	while (phase < 2) yield();
	return NULL;
}
void *writerB(void *d) {
	int *p = d;
	while (phase < 1) yield();
	for (int i = 0; i < 32; i++) p[i*2] = 2;
	phase = 2;
	return NULL;
}
int main(void) {
	int *buf = malloc(64 * sizeof(int));
	int dynamic *s = SCAST(int dynamic *, buf);
	int t1 = spawn(writerA, s);
	int t2 = spawn(writerB, s);
	join(t1);
	join(t2);
	return 0;
}
`
	cfg := interp.DefaultConfig()
	cfg.MaxReports = 5
	rt, _, err := core.BuildAndRun(src, compile.DefaultOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rt.Reports()); n > 5 {
		t.Fatalf("reports capped at 5, got %d", n)
	}
	if n := len(rt.Reports()); n == 0 {
		t.Fatal("expected some reports")
	}
}

// TestCustomAllocatorSupport exercises the §4.5 extension: a user-written
// arena allocator recycles chunks between threads. Without the
// shcRecycle trusted annotation SharC reports false races on recycled
// chunks; with it the program runs clean.
func TestCustomAllocatorSupport(t *testing.T) {
	const tmpl = `
struct arena {
	mutex *m;
	char dynamic *base;
	int locked(m) next;
};

char dynamic *arenaAlloc(struct arena dynamic *a, int n) {
	mutexLock(a->m);
	int off = a->next;
	a->next = off + n;
	mutexUnlock(a->m);
	RECYCLE
	return a->base + off;
}

void arenaResetHalf(struct arena dynamic *a) {
	mutexLock(a->m);
	a->next = 0;
	mutexUnlock(a->m);
}

int racy phase;

void *workerA(void *d) {
	struct arena *a = d;
	char dynamic *buf = arenaAlloc(a, 64);
	for (int i = 0; i < 64; i++) buf[i] = i;
	phase = 1;
	while (phase < 2) yield();
	return NULL;
}

void *workerB(void *d) {
	struct arena *a = d;
	while (phase < 1) yield();
	arenaResetHalf(a);
	char dynamic *buf = arenaAlloc(a, 64);
	for (int i = 0; i < 64; i++) buf[i] = 64 - i;
	phase = 2;
	return NULL;
}

int main(void) {
	struct arena *a = malloc(sizeof(struct arena));
	a->m = mutexNew();
	char *raw = malloc(4096);
	a->base = SCAST(char dynamic *, raw);
	mutexLock(a->m);
	a->next = 0;
	mutexUnlock(a->m);
	struct arena dynamic *ad = SCAST(struct arena dynamic *, a);
	int h1 = spawn(workerA, ad);
	int h2 = spawn(workerB, ad);
	join(h1);
	join(h2);
	return 0;
}
`
	// Without the hook: the recycled chunk still carries workerA's writer
	// bits and workerB's writes are reported.
	without := strings.Replace(tmpl, "RECYCLE", "", 1)
	rt, _, _ := exec(t, without)
	if len(rt.ReportsOfKind(interp.ReportRace)) == 0 {
		t.Fatal("custom allocator without shcRecycle should misreport (§4.5)")
	}
	// With the hook the recycled range is cleared, like free().
	with := strings.Replace(tmpl, "RECYCLE", "shcRecycle(a->base + off, n);", 1)
	rt2, _, _ := exec(t, with)
	if races := rt2.ReportsOfKind(interp.ReportRace); len(races) != 0 {
		t.Fatalf("shcRecycle should silence the recycling: %v", races)
	}
}

func TestPrintVariadicInts(t *testing.T) {
	_, _, out := exec(t, `
int main(void) {
	print("values:", 1, 2, 3);
	print("\n");
	return 0;
}
`)
	if !strings.Contains(out, "values: 1 2 3") {
		t.Fatalf("output = %q", out)
	}
}

func TestCondSignalBeforeAnyWaiter(t *testing.T) {
	// Signaling a condition variable nobody has waited on is a no-op.
	_, ret, _ := exec(t, `
int main(void) {
	cond *c = condNew();
	condSignal(c);
	condBroadcast(c);
	return 7;
}
`)
	if ret != 7 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestStrBuiltinsEdgeCases(t *testing.T) {
	_, ret, _ := exec(t, `
int main(void) {
	char *empty = malloc(1);
	empty[0] = 0;
	int a = strlen(empty);              // 0
	int b = strcmp(empty, "");          // 0
	int c = strstr("hay", "missing");   // -1
	int d = strstr("abc", "");          // 0 (empty needle matches at 0)
	return a * 1000 + (b == 0) * 100 + (c == -1) * 10 + (d == 0);
}
`)
	if ret != 111 {
		t.Fatalf("ret = %d, want 111", ret)
	}
}

func TestCompoundOpsFullMatrix(t *testing.T) {
	_, ret, _ := exec(t, `
int main(void) {
	int x = 100;
	x += 10;  // 110
	x -= 20;  // 90
	x *= 2;   // 180
	x /= 3;   // 60
	x %= 7;   // 4
	x <<= 3;  // 32
	x >>= 1;  // 16
	x |= 3;   // 19
	x &= 29;  // 17
	x ^= 5;   // 20
	return x;
}
`)
	if ret != 20 {
		t.Fatalf("ret = %d, want 20", ret)
	}
}

func TestPrefixPostfixSemantics(t *testing.T) {
	_, ret, _ := exec(t, `
int main(void) {
	int i = 5;
	int a = i++; // a=5, i=6
	int b = ++i; // b=7, i=7
	int c = i--; // c=7, i=6
	int d = --i; // d=5, i=5
	return a * 1000 + b * 100 + c * 10 + d - 5000 - 700 - 70 - 5;
}
`)
	if ret != 0 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestPointerIncrementScales(t *testing.T) {
	_, ret, _ := exec(t, `
struct pair { int a; int b; };
int main(void) {
	struct pair *arr = malloc(3 * sizeof(struct pair));
	arr[0].a = 1; arr[0].b = 2;
	arr[1].a = 3; arr[1].b = 4;
	arr[2].a = 5; arr[2].b = 6;
	struct pair *p = arr;
	p++;
	int mid = p->a;   // 3
	p--;
	int first = p->b; // 2
	return mid * 10 + first;
}
`)
	if ret != 32 {
		t.Fatalf("ret = %d, want 32", ret)
	}
}

func TestShcRecycleNullAndNegative(t *testing.T) {
	// Degenerate arguments are ignored, not fatal.
	_, ret, _ := exec(t, `
int main(void) {
	shcRecycle(NULL, 8);
	char *p = malloc(8);
	shcRecycle(p, 0);
	shcRecycle(p, -3);
	return 5;
}
`)
	if ret != 5 {
		t.Fatalf("ret = %d", ret)
	}
}
