package interp

// Telemetry adapters: the glue between the runtime's substrates and
// internal/telemetry. The per-site collector and the tracer are off by
// default; when disabled, the per-event cost in the interpreter is a
// single nil comparison (benchmarked in telemetry_test.go).

import (
	"repro/internal/ir"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// siteInfos converts the program's site table into telemetry's form.
func siteInfos(prog *ir.Program) []telemetry.SiteInfo {
	info := make([]telemetry.SiteInfo, len(prog.Sites))
	for i, s := range prog.Sites {
		info[i] = telemetry.SiteInfo{LValue: s.LValue, Pos: s.Pos}
	}
	return info
}

// elisionInfo copies the static pass's counts into telemetry's form.
func elisionInfo(prog *ir.Program) telemetry.Elision {
	return telemetry.Elision{
		TotalDynamic:  prog.Elision.TotalDynamic,
		TotalLocked:   prog.Elision.TotalLocked,
		ElidedDynamic: prog.Elision.ElidedDynamic,
		ElidedLocked:  prog.Elision.ElidedLocked,
	}
}

// cacheSink receives check-cache outcomes from the shadow and attributes
// them to program sites (the shadow interns sites separately, so ids are
// translated through shadowRev). Installed only when the collector or
// tracer is live.
type cacheSink struct{ rt *Runtime }

func (s *cacheSink) CacheLookup(tid int, siteID uint32, hit bool) {
	rt := s.rt
	site := -1
	if int(siteID) < len(rt.shadowRev) {
		site = rt.shadowRev[siteID]
	}
	rt.tel.CacheLookup(tid, site, hit)
	if hit {
		rt.tracer.Append(telemetry.KindCacheHit, tid, site, 0, 0)
	}
}

// schedObs forwards scheduler decisions and blocking edges into the
// tracer. It is called with the controller's lock held and must not call
// back into the scheduler; it only stamps the tracer.
type schedObs struct{ rt *Runtime }

func (o schedObs) Decision(step int64, chosen int, p sched.Point) {
	o.rt.tracer.SetStep(step + 1) // events after decision k run in slot k+1
	o.rt.tracer.Append(telemetry.KindSchedDecision, o.rt.tidOfKey(chosen), -1, 0, int64(p))
}

func (o schedObs) Block(key int, p sched.Point) {
	o.rt.tracer.Append(telemetry.KindSchedBlock, o.rt.tidOfKey(key), -1, 0, int64(p))
}

// bindKey records the scheduler key -> thread id mapping (registration
// order makes it available before the task's first decision).
func (rt *Runtime) bindKey(key, tid int) {
	if rt.tracer != nil {
		rt.skeyTids.Store(key, tid)
	}
}

func (rt *Runtime) tidOfKey(key int) int {
	if v, ok := rt.skeyTids.Load(key); ok {
		return v.(int)
	}
	return 0
}

// Counters exposes the always-on global counter spine.
func (rt *Runtime) Counters() *telemetry.Counters { return rt.counters }

// Collector exposes the per-site metrics collector (nil unless the run was
// configured with Config.Metrics or a shared collector). The serve layer
// folds finished requests' collectors into per-program aggregates with
// telemetry.Collector.Merge; call after Run.
func (rt *Runtime) Collector() *telemetry.Collector { return rt.tel }

// GlobalStats assembles this run's global counter tier in telemetry's
// canonical merge form (the shape MergeGlobalStats folds). Call after Run.
func (rt *Runtime) GlobalStats() telemetry.GlobalStats { return rt.globalStats() }

// Tracer returns the structured event tracer, or nil when tracing is off.
func (rt *Runtime) Tracer() *telemetry.Tracer { return rt.tracer }

// Decisions returns how many scheduling decisions the cooperative
// controller made, or -1 on a free-running run (no controller, nothing to
// count). Call after Run.
func (rt *Runtime) Decisions() int64 {
	if rt.ctl == nil {
		return -1
	}
	return rt.ctl.Decisions()
}

// globalStats assembles the snapshot's global tier from the spine and the
// runtime's own gauges.
func (rt *Runtime) globalStats() telemetry.GlobalStats {
	c := rt.counters
	s := rt.Stats()
	g := telemetry.GlobalStats{
		TotalAccesses:  s.TotalAccesses,
		DynamicChecks:  s.DynamicAccesses,
		LockChecks:     s.LockChecks,
		ElidedChecks:   c.ElidedChecks.Load(),
		Barriers:       s.Barriers,
		Collections:    s.Collections,
		LockAcquires:   c.LockAcquires.Load(),
		LockReleases:   c.LockReleases.Load(),
		Spawns:         c.Spawns.Load(),
		Conflicts:      c.Conflicts.Load(),
		LockViolations: c.LockViolations.Load(),
		OnerefFailures: c.OnerefFailures.Load(),
		MaxThreads:     int64(s.MaxThreads),
		MaxLocksHeld:   c.MaxLocksHeld.Load(),
		CacheLookups:   s.CheckCacheLookups,
		CacheHits:      s.CheckCacheHits,
		PageMemoHits:   s.PageMemoHits,
		ShadowPages:    s.ShadowPages,
		HeapPages:      s.HeapPages,
	}
	if rt.rc != nil {
		g.RCLoggedSlots = rt.rc.LoggedSlots()
	}
	return g
}

// TelemetrySnapshot freezes the per-site metrics; nil unless the run was
// configured with Config.Metrics (or a shared collector). Call after Run.
func (rt *Runtime) TelemetrySnapshot() *telemetry.Snapshot {
	if rt.tel == nil {
		return nil
	}
	return rt.tel.Snapshot(rt.globalStats(), elisionInfo(rt.prog))
}
