package interp_test

import (
	"fmt"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/interp"
)

// TestStressManyThreadsLockedQueue hammers a locked work queue with ten
// worker threads over many items: the counter must be exact and SharC must
// stay silent. Skipped under -short.
func TestStressManyThreadsLockedQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const workers = 10
	const items = 2000
	src := fmt.Sprintf(`
struct q {
	mutex *m;
	cond *cv;
	int locked(m) next;
	int locked(m) done;
	int locked(m) checksum;
};
void *worker(void *d) {
	struct q *q = d;
	while (1) {
		mutexLock(q->m);
		int i = q->next;
		if (i >= %d) {
			mutexUnlock(q->m);
			return NULL;
		}
		q->next = i + 1;
		mutexUnlock(q->m);
		// Simulate work privately.
		int acc = 0;
		for (int k = 0; k < 20; k++) acc = (acc + i * k) %% 9973;
		mutexLock(q->m);
		q->checksum = (q->checksum + acc) %% 9973;
		q->done = q->done + 1;
		mutexUnlock(q->m);
	}
	return NULL;
}
int main(void) {
	struct q *q = malloc(sizeof(struct q));
	q->m = mutexNew();
	q->cv = condNew();
	mutexLock(q->m);
	q->next = 0;
	q->done = 0;
	q->checksum = 0;
	mutexUnlock(q->m);
	struct q dynamic *qd = SCAST(struct q dynamic *, q);
	int handles[%d];
	for (int i = 0; i < %d; i++) handles[i] = spawn(worker, qd);
	for (int i = 0; i < %d; i++) join(handles[i]);
	mutexLock(qd->m);
	int done = qd->done;
	mutexUnlock(qd->m);
	return done %% 251;
}
`, items, workers, workers, workers)

	cfg := interp.DefaultConfig()
	rt, ret, err := core.BuildAndRun(src, compile.DefaultOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(items % 251); ret != want {
		t.Fatalf("done = %d, want %d", ret, want)
	}
	for _, r := range rt.Reports() {
		t.Errorf("report: %s", r)
	}
	st := rt.Stats()
	if st.MaxThreads < workers {
		t.Errorf("max threads %d", st.MaxThreads)
	}
	if st.LockChecks == 0 {
		t.Error("expected lock checks")
	}
}

// TestStressOwnershipChurn pushes thousands of buffers through a handoff
// mailbox with casts and frees, stressing the reference counter and the
// deferred-reuse allocator. Skipped under -short.
func TestStressOwnershipChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	src := `
struct mb {
	mutex *m;
	cond *cv;
	int locked(m) *locked(m) slot;
	int locked(m) sent;
};
void *consumer(void *d) {
	struct mb *b = d;
	int got = 0;
	while (got < 1500) {
		mutexLock(b->m);
		while (b->slot == NULL) condWait(b->cv, b->m);
		int private *it = SCAST(int private *, b->slot);
		b->slot = NULL;
		condSignal(b->cv);
		mutexUnlock(b->m);
		if (it[0] != got) {
			free(it);
			return NULL;
		}
		free(it);
		it = NULL;
		got++;
	}
	return NULL;
}
int main(void) {
	struct mb *b = malloc(sizeof(struct mb));
	b->m = mutexNew();
	b->cv = condNew();
	mutexLock(b->m);
	b->slot = NULL;
	b->sent = 0;
	mutexUnlock(b->m);
	struct mb dynamic *bd = SCAST(struct mb dynamic *, b);
	int h = spawn(consumer, bd);
	for (int i = 0; i < 1500; i++) {
		int *it = malloc(2 * sizeof(int));
		it[0] = i;
		mutexLock(bd->m);
		while (bd->slot != NULL) condWait(bd->cv, bd->m);
		bd->slot = SCAST(int locked(bd->m) *, it);
		bd->sent = bd->sent + 1;
		condSignal(bd->cv);
		mutexUnlock(bd->m);
	}
	join(h);
	mutexLock(bd->m);
	int sent = bd->sent;
	mutexUnlock(bd->m);
	return sent % 251;
}
`
	cfg := interp.DefaultConfig()
	rt, ret, err := core.BuildAndRun(src, compile.DefaultOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(1500 % 251); ret != want {
		t.Fatalf("sent = %d, want %d", ret, want)
	}
	for _, r := range rt.Reports() {
		t.Errorf("report: %s", r)
	}
	if rt.Stats().Collections == 0 {
		t.Error("the reference counter should have collected")
	}
}
