package interp

// Portfolio schedule exploration: K concurrent explorer workers, each with
// a fully instance-scoped stack (controller, strategy stream, runtime,
// shadow state, telemetry instruments), coordinated through the pluggable
// sharing layer in internal/portfolio.
//
// Determinism contract. The merged output is byte-identical for every
// worker count and GOMAXPROCS value, because everything timing-dependent
// is advisory:
//
//   - Schedule i's strategy is a pure function of (Strategy, Seed, i) and
//     the calibration horizon, which is fixed by schedule 0 before any
//     worker starts. Two schedules are *duplicates* when their strategy
//     identities (name + seed) are equal — a static property computed up
//     front — which makes their decision traces, reports, and decision
//     counts equal by construction.
//   - A worker reaching a duplicate first consults the sharing layer for
//     the original's memo and skips execution when one is visible; when
//     the memo has not propagated yet (racy by design in the global
//     topology) it falls back to executing the schedule with throwaway
//     instruments. Both paths yield the identical outcome row, and
//     neither contributes telemetry or trace events, so the merged output
//     cannot depend on which path was taken.
//   - Shared violation sites may reorder a worker's remaining queue (PCT
//     schedules are promoted once findings exist), never change what runs.
//   - The merge stage canonicalizes by ascending schedule index: findings
//     dedupe to their minimum schedule, counters sum, gauges take maxima,
//     and trace events re-sequence by (schedule, emission order).

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ir"
	"repro/internal/portfolio"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/token"
)

// ExploreOptions configures systematic schedule exploration.
type ExploreOptions struct {
	// Schedules is the number of schedules to run (default 100).
	Schedules int
	// Strategy selects the schedule generator: "random", "pct", "rr", or
	// "mix" (default), which interleaves a bounded round-robin sweep with
	// PCT random-priority schedules and uniform random schedules.
	Strategy string
	// Seed perturbs the whole exploration; schedule i derives its own seed
	// from (Seed, i).
	Seed int64
	// Workers is the number of concurrent explorer workers (default 1).
	// The merged output is identical for every worker count.
	Workers int
	// Share selects the cross-worker sharing topology: "none", "local"
	// (default), or "global"; see portfolio.New. Unknown values fall back
	// to "local" — callers wanting strict validation use
	// portfolio.ValidKind first.
	Share string
}

// ScheduleOutcome summarizes one explored schedule.
type ScheduleOutcome struct {
	Index    int    `json:"index"`
	Strategy string `json:"strategy"`
	Seed     int64  `json:"seed"`
	Deadlock bool   `json:"deadlock,omitempty"`
	Reports  int    `json:"reports"`
	New      int    `json:"new"`
	// Duplicate marks a schedule whose strategy identity repeats an
	// earlier index: its results are equal to the original's by
	// construction, and the portfolio may skip executing it.
	Duplicate bool `json:"dup,omitempty"`
}

// Finding is one distinct violation discovered during exploration,
// deduplicated by (site, kind) across schedules.
type Finding struct {
	Kind     ReportKind `json:"-"`
	KindName string     `json:"kind"`
	Pos      token.Pos  `json:"-"`
	Site     string     `json:"site"`
	Msg      string     `json:"msg"`
	Schedule int        `json:"schedule"` // first schedule that exposed it
	Strategy string     `json:"strategy"`
	Seed     int64      `json:"seed"`
}

// ExploreSummary is the coverage report of an exploration run.
type ExploreSummary struct {
	Schedules int `json:"schedules"`
	Decisions int64 `json:"decisions"`
	// Duplicates counts schedules whose strategy identity repeated an
	// earlier index (a static property of the strategy family and seed).
	Duplicates int               `json:"duplicates"`
	Findings   []Finding         `json:"findings"`
	Outcomes   []ScheduleOutcome `json:"outcomes"`
	// Telemetry aggregates per-site metrics across every schedule (nil
	// unless the template config enabled Metrics).
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	// Trace is the merged event tracer spanning all schedules (nil unless
	// tracing was enabled); events carry the schedule index they ran in.
	Trace *telemetry.Tracer `json:"-"`

	// The fields below describe how the portfolio ran, not what it found.
	// They are excluded from JSON because they vary with worker count and
	// timing, and the JSON output is pinned byte-identical across both.

	// Workers is the worker count the exploration actually used.
	Workers int `json:"-"`
	// Share is the sharing topology the exploration actually used.
	Share string `json:"-"`
	// SkippedExecutions counts duplicate schedules discharged from a
	// shared memo without executing (≤ Duplicates; the rest of the
	// duplicates re-executed because no memo was visible in time).
	SkippedExecutions int `json:"-"`
	// ShareStats reports the sharing layer's transport counters.
	ShareStats portfolio.Stats `json:"-"`
	// FirstFinding is the wall-clock time from the start of exploration to
	// the first schedule observed with at least one report (0 if none).
	FirstFinding time.Duration `json:"-"`
}

// findingKey dedupes reports by (site, kind): the same violation rediscovered
// under another interleaving is not a new finding.
func findingKey(r Report) string {
	return fmt.Sprintf("%d|%s:%d:%d", r.Kind, r.Pos.File, r.Pos.Line, r.Pos.Col)
}

// exploreStrategy builds schedule i's strategy. The round-robin sweep uses
// quanta 1..4; PCT uses 3 change points over the calibrated decision
// horizon.
func exploreStrategy(kind string, seed int64, i int, horizon int64) sched.Strategy {
	if horizon < 16 {
		horizon = 4096
	}
	derived := seed*1_000_003 + int64(i)
	switch kind {
	case "random":
		return sched.NewRandom(derived)
	case "pct":
		return sched.NewPCT(derived, 3, horizon)
	case "rr":
		return sched.NewRoundRobin(int64(1 + i%4))
	default: // mix
		switch i % 4 {
		case 0:
			return sched.NewRoundRobin(int64(1 + (i/4)%4))
		case 1, 2:
			return sched.NewPCT(derived, 3, horizon)
		default:
			return sched.NewRandom(derived)
		}
	}
}

// pctSchedule reports whether schedule i of the strategy family is a PCT
// schedule — the kind whose priority-demotion search benefits from knowing
// which sites already produced findings, so workers promote these when the
// sharing layer has sites.
func pctSchedule(kind string, i int) bool {
	return kind == "pct" || (kind == "mix" && (i%4 == 1 || i%4 == 2))
}

// schedResult is one schedule's contribution to the canonical merge.
type schedResult struct {
	name      string
	seed      int64
	decisions int64
	deadlock  bool
	// reports are the schedule's reports in the runtime's deterministic
	// emission order, in the engine-independent carrier form.
	reports []portfolio.Finding
	dup     bool
	skipped bool // duplicate discharged from a memo without executing
	// global holds the schedule's substrate gauges and counter totals
	// (hasGlobal set); duplicates never contribute one.
	global    telemetry.GlobalStats
	hasGlobal bool
}

// instruments is one worker's instance-scoped telemetry stack.
type instruments struct {
	tel    *telemetry.Collector
	tracer *telemetry.Tracer
}

// exploration carries the per-run state shared by the calibration run and
// the workers.
type exploration struct {
	prog    *ir.Program
	cfg     Config
	opt     ExploreOptions
	info    []telemetry.SiteInfo
	metrics bool
	tracing bool
	horizon int64

	sharing portfolio.Sharing
	results []schedResult

	start        time.Time
	firstFinding atomic.Int64 // nanoseconds since start; 0 = none yet
	skipped      atomic.Int64
}

// carryReports converts a runtime's reports to the memo carrier form.
func carryReports(reports []Report) []portfolio.Finding {
	if len(reports) == 0 {
		return nil
	}
	out := make([]portfolio.Finding, len(reports))
	for i, r := range reports {
		out[i] = portfolio.Finding{
			Kind:     int(r.Kind),
			KindName: r.Kind.String(),
			File:     r.Pos.File,
			Line:     r.Pos.Line,
			Col:      r.Pos.Col,
			Site:     fmt.Sprintf("%s:%d:%d", r.Pos.File, r.Pos.Line, r.Pos.Col),
			Msg:      r.Msg,
		}
	}
	return out
}

// distinctSites returns each report site once, in first-appearance order.
func distinctSites(reports []portfolio.Finding) []string {
	var out []string
	seen := make(map[string]bool)
	for _, f := range reports {
		if !seen[f.Site] {
			seen[f.Site] = true
			out = append(out, f.Site)
		}
	}
	return out
}

// noteFindings stamps the time-to-first-finding clock and publishes the
// schedule's violation sites.
func (e *exploration) noteFindings(reports []portfolio.Finding) {
	if len(reports) == 0 {
		return
	}
	e.firstFinding.CompareAndSwap(0, int64(time.Since(e.start))+1)
	e.sharing.PublishSites(distinctSites(reports))
}

// execute runs schedule i on a fresh runtime wired to ins (both fields may
// be nil: a throwaway run) and returns the result row plus the recorded
// decision trace.
func (e *exploration) execute(i int, ins instruments, withGlobal bool) (schedResult, *sched.Trace) {
	strat := exploreStrategy(e.opt.Strategy, e.opt.Seed, i, e.horizon)
	ctl := sched.New(strat, sched.Options{Record: true})
	c := e.cfg
	c.Sched = ctl
	c.Telemetry = ins.tel
	c.Tracer = ins.tracer
	c.Counters = new(telemetry.Counters) // per-schedule spine → per-schedule totals
	if ins.tracer != nil {
		ins.tracer.SetSchedule(i)
		// Reset the decision stamp: events before the schedule's first
		// decision must not inherit the previous schedule's count, which
		// would differ with the worker's queue and break worker-count
		// independence.
		ins.tracer.SetStep(-1)
	}
	rt := New(e.prog, c)
	rt.Run() // thread failures surface as reports
	res := schedResult{
		name:      strat.Name(),
		seed:      strat.Seed(),
		decisions: ctl.Decisions(),
		deadlock:  ctl.Deadlocked(),
		reports:   carryReports(rt.Reports()),
	}
	if withGlobal {
		res.global = rt.globalStats()
		res.hasGlobal = true
	}
	return res, ctl.Trace()
}

// runPrimary executes a first-occurrence schedule with the worker's real
// instruments and publishes its memo.
func (e *exploration) runPrimary(i int, identity string, ins instruments, memos map[string]portfolio.Memo) {
	res, tr := e.execute(i, ins, e.metrics)
	m := portfolio.Memo{
		Digest:    portfolio.DigestTrace(tr),
		Decisions: res.decisions,
		Deadlock:  res.deadlock,
		Reports:   len(res.reports),
		Findings:  res.reports,
	}
	memos[identity] = m
	e.sharing.Publish(identity, m)
	e.noteFindings(res.reports)
	e.results[i] = res
}

// runDuplicate discharges schedule i, a duplicate of an earlier index,
// from a memo when one is visible, re-executing with throwaway instruments
// otherwise. Either way the result row is identical and no telemetry is
// contributed.
func (e *exploration) runDuplicate(i int, identity string, memos map[string]portfolio.Memo) {
	m, ok := memos[identity]
	if !ok {
		m, ok = e.sharing.Lookup(identity)
	}
	if ok {
		strat := exploreStrategy(e.opt.Strategy, e.opt.Seed, i, e.horizon)
		e.results[i] = schedResult{
			name:      strat.Name(),
			seed:      strat.Seed(),
			decisions: m.Decisions,
			deadlock:  m.Deadlock,
			reports:   m.Findings,
			dup:       true,
			skipped:   true,
		}
		e.skipped.Add(1)
		e.noteFindings(m.Findings)
		return
	}
	res, _ := e.execute(i, instruments{}, false)
	res.dup = true
	e.noteFindings(res.reports)
	e.results[i] = res
}

// worker runs the ascending index queue, promoting PCT schedules to the
// front once shared findings exist. Reordering is disabled while tracing:
// the merged ring window is byte-identical to the sequential one only when
// every worker appends in ascending schedule order.
func (e *exploration) worker(queue []int, dupOf []int, identities []string, ins instruments, memos map[string]portfolio.Memo) {
	promoted := e.tracing // already-promoted sentinel doubles as the disable flag
	for n := 0; n < len(queue); n++ {
		if !promoted && e.sharing.SiteCount() > 0 {
			promoted = true
			queue = promotePCT(queue[:n:n], queue[n:], e.opt.Strategy)
		}
		i := queue[n]
		if dupOf[i] >= 0 {
			e.runDuplicate(i, identities[i], memos)
		} else {
			e.runPrimary(i, identities[i], ins, memos)
		}
	}
}

// promotePCT stably partitions the remaining queue with PCT schedules
// first, preserving ascending order within each class.
func promotePCT(done, rest []int, kind string) []int {
	out := done
	for _, i := range rest {
		if pctSchedule(kind, i) {
			out = append(out, i)
		}
	}
	for _, i := range rest {
		if !pctSchedule(kind, i) {
			out = append(out, i)
		}
	}
	return out
}

// Explore runs the program under opt.Schedules controlled schedules —
// distributed over opt.Workers concurrent workers — and aggregates the
// distinct findings. cfg is used as a template; its Sched, Telemetry,
// Tracer, and Counters fields are overwritten per schedule so every worker
// owns an instance-scoped stack.
func Explore(prog *ir.Program, cfg Config, opt ExploreOptions) *ExploreSummary {
	if opt.Schedules <= 0 {
		opt.Schedules = 100
	}
	if opt.Strategy == "" {
		opt.Strategy = "mix"
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.Workers > opt.Schedules {
		opt.Workers = opt.Schedules
	}
	if !portfolio.ValidKind(opt.Share) {
		opt.Share = "local"
	}
	sharing, _ := portfolio.New(opt.Share, opt.Workers)

	e := &exploration{
		prog:    prog,
		cfg:     cfg,
		opt:     opt,
		info:    siteInfos(prog),
		metrics: cfg.Metrics || cfg.Telemetry != nil,
		tracing: cfg.TraceCapacity > 0 || cfg.Tracer != nil,
		sharing: sharing,
		results: make([]schedResult, opt.Schedules),
		start:   time.Now(),
	}
	// The template's shared-instance fields are replaced by per-worker
	// instances below; drop them so runtimes never alias across workers.
	e.cfg.Telemetry, e.cfg.Tracer, e.cfg.Counters = nil, nil, nil

	// Strategy identities are pure functions of (Strategy, Seed, index), so
	// the duplicate structure of the whole exploration is static: dupOf[i]
	// is the first earlier index with the same identity, or -1.
	identities := make([]string, opt.Schedules)
	dupOf := make([]int, opt.Schedules)
	first := make(map[string]int)
	for i := range identities {
		s := exploreStrategy(opt.Strategy, opt.Seed, i, 4096)
		identities[i] = fmt.Sprintf("%s|%d", s.Name(), s.Seed())
		if j, ok := first[identities[i]]; ok {
			dupOf[i] = j
		} else {
			dupOf[i] = -1
			first[identities[i]] = i
		}
	}

	// Calibration: schedule 0 runs first, alone, under the default horizon;
	// its decision count fixes the PCT horizon for every later schedule, so
	// strategy construction never depends on execution order.
	workerIns := make([]instruments, opt.Workers) // [0] doubles as the calibration run's
	newIns := func() instruments {
		var ins instruments
		if e.metrics {
			ins.tel = telemetry.NewCollector(e.info)
		}
		if e.tracing {
			ins.tracer = telemetry.NewTracer(cfg.TraceCapacity, e.info)
		}
		return ins
	}
	workerIns[0] = newIns()
	memos0 := make(map[string]portfolio.Memo)
	e.runPrimary(0, identities[0], workerIns[0], memos0)
	e.horizon = e.results[0].decisions

	// Workers: worker w owns indices {i ≥ 1 : (i-1) mod Workers == w},
	// executed in ascending order (modulo the output-neutral PCT
	// promotion). Worker 0 inherits the calibration run's instruments and
	// memos, so with one worker the run degenerates to the sequential
	// single-collector exploration.
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		var queue []int
		for i := 1 + w; i < opt.Schedules; i += opt.Workers {
			queue = append(queue, i)
		}
		ins, memos := workerIns[0], memos0
		if w > 0 {
			ins = newIns()
			workerIns[w] = ins
			memos = make(map[string]portfolio.Memo)
		}
		wg.Add(1)
		go func(queue []int, ins instruments, memos map[string]portfolio.Memo) {
			defer wg.Done()
			e.worker(queue, dupOf, identities, ins, memos)
		}(queue, ins, memos)
	}
	wg.Wait()
	sharing.Close()

	// Canonical merge: ascending schedule index, findings attributed to
	// their minimum index. Identical for every worker count by the
	// determinism contract above.
	sum := &ExploreSummary{
		Schedules:         opt.Schedules,
		Workers:           opt.Workers,
		Share:             opt.Share,
		SkippedExecutions: int(e.skipped.Load()),
		ShareStats:        sharing.Stats(),
	}
	if ns := e.firstFinding.Load(); ns > 0 {
		sum.FirstFinding = time.Duration(ns - 1)
	}
	seen := make(map[string]bool)
	for i, r := range e.results {
		sum.Decisions += r.decisions
		if r.dup {
			sum.Duplicates++
		}
		out := ScheduleOutcome{
			Index:     i,
			Strategy:  r.name,
			Seed:      r.seed,
			Deadlock:  r.deadlock,
			Reports:   len(r.reports),
			Duplicate: r.dup,
		}
		for _, f := range r.reports {
			key := fmt.Sprintf("%d|%s:%d:%d", f.Kind, f.File, f.Line, f.Col)
			if seen[key] {
				continue
			}
			seen[key] = true
			out.New++
			sum.Findings = append(sum.Findings, Finding{
				Kind:     ReportKind(f.Kind),
				KindName: f.KindName,
				Pos:      token.Pos{File: f.File, Line: f.Line, Col: f.Col},
				Site:     f.Site,
				Msg:      f.Msg,
				Schedule: i,
				Strategy: r.name,
				Seed:     r.seed,
			})
		}
		sum.Outcomes = append(sum.Outcomes, out)
	}

	// Telemetry merge: per-site counters fold into one collector
	// (commutative sums and mask ORs), per-schedule substrate totals fold
	// in ascending index order, and the per-worker trace rings merge into
	// one frozen ring re-sequenced by (schedule, emission order).
	if e.metrics {
		master := cfg.Telemetry
		if master == nil {
			master = telemetry.NewCollector(e.info)
		}
		for _, ins := range workerIns {
			if ins.tel != nil && ins.tel != master {
				master.Merge(ins.tel)
			}
		}
		globals := make([]telemetry.GlobalStats, 0, opt.Schedules)
		for _, r := range e.results {
			if r.hasGlobal {
				globals = append(globals, r.global)
			}
		}
		sum.Telemetry = master.Snapshot(telemetry.MergeGlobalStats(globals...), elisionInfo(prog))
	}
	if e.tracing {
		parts := make([]*telemetry.Tracer, 0, len(workerIns))
		for _, ins := range workerIns {
			if ins.tracer != nil {
				parts = append(parts, ins.tracer)
			}
		}
		sum.Trace = telemetry.MergeTracers(cfg.TraceCapacity, e.info, parts...)
	}
	return sum
}
