package interp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/token"
)

// ExploreOptions configures systematic schedule exploration.
type ExploreOptions struct {
	// Schedules is the number of schedules to run (default 100).
	Schedules int
	// Strategy selects the schedule generator: "random", "pct", "rr", or
	// "mix" (default), which interleaves a bounded round-robin sweep with
	// PCT random-priority schedules and uniform random schedules.
	Strategy string
	// Seed perturbs the whole exploration; schedule i derives its own seed
	// from (Seed, i).
	Seed int64
}

// ScheduleOutcome summarizes one explored schedule.
type ScheduleOutcome struct {
	Index    int    `json:"index"`
	Strategy string `json:"strategy"`
	Seed     int64  `json:"seed"`
	Deadlock bool   `json:"deadlock,omitempty"`
	Reports  int    `json:"reports"`
	New      int    `json:"new"`
}

// Finding is one distinct violation discovered during exploration,
// deduplicated by (site, kind) across schedules.
type Finding struct {
	Kind     ReportKind `json:"-"`
	KindName string     `json:"kind"`
	Pos      token.Pos  `json:"-"`
	Site     string     `json:"site"`
	Msg      string     `json:"msg"`
	Schedule int        `json:"schedule"` // first schedule that exposed it
	Strategy string     `json:"strategy"`
	Seed     int64      `json:"seed"`
}

// ExploreSummary is the coverage report of an exploration run.
type ExploreSummary struct {
	Schedules int               `json:"schedules"`
	Decisions int64             `json:"decisions"`
	Findings  []Finding         `json:"findings"`
	Outcomes  []ScheduleOutcome `json:"outcomes"`
	// Telemetry aggregates per-site metrics across every schedule (nil
	// unless the template config enabled Metrics).
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	// Trace is the shared event tracer spanning all schedules (nil unless
	// tracing was enabled); events carry the schedule index they ran in.
	Trace *telemetry.Tracer `json:"-"`
}

// findingKey dedupes reports by (site, kind): the same violation rediscovered
// under another interleaving is not a new finding.
func findingKey(r Report) string {
	return fmt.Sprintf("%d|%s:%d:%d", r.Kind, r.Pos.File, r.Pos.Line, r.Pos.Col)
}

// exploreStrategy builds schedule i's strategy. The round-robin sweep uses
// quanta 1..4; PCT uses 3 change points over the decision horizon observed
// on earlier schedules.
func exploreStrategy(kind string, seed int64, i int, horizon int64) sched.Strategy {
	if horizon < 16 {
		horizon = 4096
	}
	derived := seed*1_000_003 + int64(i)
	switch kind {
	case "random":
		return sched.NewRandom(derived)
	case "pct":
		return sched.NewPCT(derived, 3, horizon)
	case "rr":
		return sched.NewRoundRobin(int64(1 + i%4))
	default: // mix
		switch i % 4 {
		case 0:
			return sched.NewRoundRobin(int64(1 + (i/4)%4))
		case 1, 2:
			return sched.NewPCT(derived, 3, horizon)
		default:
			return sched.NewRandom(derived)
		}
	}
}

// Explore runs the program under opt.Schedules controlled schedules and
// aggregates the distinct findings. cfg is used as a template; its Sched
// field is overwritten per schedule.
func Explore(prog *ir.Program, cfg Config, opt ExploreOptions) *ExploreSummary {
	if opt.Schedules <= 0 {
		opt.Schedules = 100
	}
	if opt.Strategy == "" {
		opt.Strategy = "mix"
	}
	// Telemetry aggregates across schedules: every runtime shares one
	// collector, tracer, and counter spine.
	if cfg.Metrics && cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewCollector(siteInfos(prog))
	}
	if cfg.TraceCapacity > 0 && cfg.Tracer == nil {
		cfg.Tracer = telemetry.NewTracer(cfg.TraceCapacity, siteInfos(prog))
	}
	if (cfg.Telemetry != nil || cfg.Tracer != nil) && cfg.Counters == nil {
		cfg.Counters = new(telemetry.Counters)
	}
	sum := &ExploreSummary{Schedules: opt.Schedules, Trace: cfg.Tracer}
	seen := make(map[string]bool)
	var horizon int64
	var lastRT *Runtime
	for i := 0; i < opt.Schedules; i++ {
		strat := exploreStrategy(opt.Strategy, opt.Seed, i, horizon)
		ctl := sched.New(strat, sched.Options{})
		c := cfg
		c.Sched = ctl
		if cfg.Tracer != nil {
			cfg.Tracer.SetSchedule(i)
		}
		rt := New(prog, c)
		lastRT = rt
		rt.Run() // thread failures surface as reports
		if d := ctl.Decisions(); d > horizon {
			horizon = d
		}
		sum.Decisions += ctl.Decisions()
		out := ScheduleOutcome{
			Index:    i,
			Strategy: strat.Name(),
			Seed:     strat.Seed(),
			Deadlock: ctl.Deadlocked(),
		}
		for _, r := range rt.Reports() {
			out.Reports++
			key := findingKey(r)
			if seen[key] {
				continue
			}
			seen[key] = true
			out.New++
			sum.Findings = append(sum.Findings, Finding{
				Kind:     r.Kind,
				KindName: r.Kind.String(),
				Pos:      r.Pos,
				Site:     fmt.Sprintf("%s:%d:%d", r.Pos.File, r.Pos.Line, r.Pos.Col),
				Msg:      r.Msg,
				Schedule: i,
				Strategy: strat.Name(),
				Seed:     strat.Seed(),
			})
		}
		sum.Outcomes = append(sum.Outcomes, out)
	}
	if cfg.Telemetry != nil && lastRT != nil {
		// The shared collector and spine hold aggregates over every
		// schedule; the last runtime supplies the substrate gauges.
		sum.Telemetry = lastRT.TelemetrySnapshot()
	}
	return sum
}
