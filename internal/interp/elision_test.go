package interp_test

import (
	"sort"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/shadow"
)

// elisionConfigs is the check-elision matrix: every corpus program must
// behave identically under every combination of the static pass and the
// runtime cache.
var elisionConfigs = []struct {
	name  string
	elide bool
	cache bool
}{
	{"static", true, false},
	{"cache", false, true},
	{"static+cache", true, true},
}

func sortedReports(rt *interp.Runtime) []string {
	var msgs []string
	for _, r := range rt.Reports() {
		msgs = append(msgs, r.Msg)
	}
	sort.Strings(msgs)
	return msgs
}

// TestCorpusElisionSound runs every testdata program with elision off and
// under each elision configuration, demanding identical exit values and
// byte-identical conflict reports. The corpus is annotation-clean, so the
// strong form of the property is that every configuration reports nothing.
func TestCorpusElisionSound(t *testing.T) {
	for _, tc := range corpusCases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			src := readCorpus(t, tc.file)

			rtOff, exitOff, err := core.BuildAndRun(src, compile.DefaultOptions(), interp.DefaultConfig())
			if err != nil {
				t.Fatalf("elision off: %v", err)
			}
			baseReports := sortedReports(rtOff)

			for _, ec := range elisionConfigs {
				opts := compile.DefaultOptions()
				opts.Elide = ec.elide
				cfg := interp.DefaultConfig()
				cfg.CheckCache = ec.cache

				rt, exit, err := core.BuildAndRun(src, opts, cfg)
				if err != nil {
					t.Fatalf("%s: %v", ec.name, err)
				}
				if exit != exitOff {
					t.Errorf("%s: exit = %d, elision off = %d", ec.name, exit, exitOff)
				}
				got := sortedReports(rt)
				if len(got) != len(baseReports) {
					t.Errorf("%s: %d reports, elision off had %d:\n got  %q\n want %q",
						ec.name, len(got), len(baseReports), got, baseReports)
					continue
				}
				for i := range got {
					if got[i] != baseReports[i] {
						t.Errorf("%s: report %d differs:\n got  %q\n want %q",
							ec.name, i, got[i], baseReports[i])
					}
				}
			}
		})
	}
}

// TestCorpusElisionStateEncoding repeats the matrix under the state-machine
// shadow encoding: the cache fast path must compose with either encoding.
func TestCorpusElisionStateEncoding(t *testing.T) {
	for _, tc := range corpusCases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			src := readCorpus(t, tc.file)

			opts := compile.DefaultOptions()
			opts.Elide = true
			cfg := interp.DefaultConfig()
			cfg.ShadowEncoding = shadow.EncodingState
			cfg.CheckCache = true

			rt, exit, err := core.BuildAndRun(src, opts, cfg)
			if err != nil {
				t.Fatalf("state+elide+cache: %v", err)
			}
			if tc.exit >= 0 && exit != tc.exit {
				t.Errorf("exit = %d, want %d", exit, tc.exit)
			}
			for _, r := range rt.Reports() {
				t.Errorf("report: %s", r)
			}
		})
	}
}
