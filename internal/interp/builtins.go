package interp

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/ir"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/token"
)

// The builtins are split into engine-shared do* bodies that take evaluated
// argument values, and a per-engine dispatch: builtin() below evaluates
// tree arguments lazily in the walker's order; the VM's FBuiltin case in
// vm.go reads the same values out of registers (with FCString preserving
// the walker's argument-evaluation/string-read interleaving) and calls the
// same bodies.

// builtin dispatches a runtime builtin call for the tree engine.
func (t *thread) builtin(e *ir.BuiltinCall) int64 {
	switch e.Name {
	case "malloc":
		return t.doMalloc(t.eval(e.Args[0]), e.Pos)

	case "free":
		return t.doFree(t.eval(e.Args[0]), e.Pos)

	case "spawn":
		fnVal := t.eval(e.Args[0])
		arg := t.eval(e.Args[1])
		return t.doSpawn(fnVal, arg, e.Pos)

	case "join":
		return t.doJoin(t.eval(e.Args[0]), e.Pos)

	case "mutexNew":
		return t.doMutexNew(e.Pos)

	case "condNew":
		return t.doCondNew(e.Pos)

	case "mutexLock":
		return t.doMutexLock(t.eval(e.Args[0]), e.Pos)

	case "mutexUnlock":
		return t.doMutexUnlock(t.eval(e.Args[0]), e.Pos)

	case "condWait":
		cvAddr := t.eval(e.Args[0])
		mAddr := t.eval(e.Args[1])
		return t.doCondWait(cvAddr, mAddr, e.Pos)

	case "condSignal", "condBroadcast":
		return t.doCondSignal(t.eval(e.Args[0]), e.Name == "condBroadcast", e.Pos)

	case "print":
		s := t.readCString(t.eval(e.Args[0]), e.ArgChecks[0], e.Pos)
		rest := make([]int64, 0, len(e.Args)-1)
		for _, a := range e.Args[1:] {
			rest = append(rest, t.eval(a))
		}
		return t.doPrint(s, rest)

	case "printInt":
		return t.doPrintInt(t.eval(e.Args[0]))

	case "assert":
		return t.doAssert(t.eval(e.Args[0]), e.Pos)

	case "rand":
		return t.rand()

	case "srand":
		return t.doSrand(t.eval(e.Args[0]))

	case "sleepMs":
		return t.doSleepMs(t.eval(e.Args[0]))

	case "yield":
		return t.doYield()

	case "memset":
		p := t.eval(e.Args[0])
		v := t.eval(e.Args[1])
		n := t.eval(e.Args[2])
		return t.doMemset(p, v, n, e)

	case "memcpy":
		d := t.eval(e.Args[0])
		s := t.eval(e.Args[1])
		n := t.eval(e.Args[2])
		return t.doMemcpy(d, s, n, e)

	case "strlen":
		return int64(len(t.readCString(t.eval(e.Args[0]), e.ArgChecks[0], e.Pos)))

	case "strcmp":
		a := t.readCString(t.eval(e.Args[0]), e.ArgChecks[0], e.Pos)
		b := t.readCString(t.eval(e.Args[1]), e.ArgChecks[1], e.Pos)
		return int64(strings.Compare(a, b))

	case "strcpy":
		d := t.eval(e.Args[0])
		s := t.eval(e.Args[1])
		return t.doStrcpy(d, s, e)

	case "shcRecycle":
		p := t.eval(e.Args[0])
		n := t.eval(e.Args[1])
		return t.doRecycle(p, n)

	case "strstr":
		hay := t.readCString(t.eval(e.Args[0]), e.ArgChecks[0], e.Pos)
		needle := t.readCString(t.eval(e.Args[1]), e.ArgChecks[1], e.Pos)
		return int64(strings.Index(hay, needle))
	}
	t.fail(e.Pos, "internal: unknown builtin %q", e.Name)
	return 0
}

// ---------------------------------------------------------------------------
// engine-shared bodies

func (t *thread) doMalloc(n int64, pos token.Pos) int64 {
	rt := t.rt
	base, ok := rt.malloc(n)
	if !ok {
		t.fail(pos, "out of memory: malloc(%d)", n)
	}
	if obs := rt.cfg.Observer; obs != nil {
		obs.Malloc(t.tid, base, rt.blockSize(base))
	}
	rt.tracer.Append(telemetry.KindMalloc, t.tid, -1, base, rt.blockSize(base))
	return base
}

func (t *thread) doFree(p int64, pos token.Pos) int64 {
	rt := t.rt
	if p == 0 {
		return 0
	}
	// Unpublish first: the block must not be reusable while its cells
	// and shadow state are being cleared.
	size := rt.beginFree(p)
	if size == 0 {
		t.fail(pos, "free of invalid pointer 0x%x", p)
	}
	// Pointer slots inside the block die: null them through barriers so
	// their referents' counts drop, then clear the shadow state — freed
	// memory is no longer considered accessed by any thread (§4.2.1).
	for i := int64(0); i < size; i++ {
		addr := p + i
		if old := t.loadRaw(addr); old != 0 {
			t.dynStore(addr, 0)
		} else {
			t.storeRaw(addr, 0)
		}
	}
	rt.shadow.ClearRange(p, size)
	rt.finishFree(p, size)
	if obs := rt.cfg.Observer; obs != nil {
		obs.Free(t.tid, p, size)
	}
	rt.tracer.Append(telemetry.KindFree, t.tid, -1, p, size)
	return 0
}

func (t *thread) doJoin(h int64, pos token.Pos) int64 {
	rt := t.rt
	v, ok := rt.handles.Load(h)
	if !ok {
		t.fail(pos, "join of unknown thread handle %d", h)
	}
	th := v.(*threadHandle)
	if rt.ctl != nil {
		if !rt.ctl.Join(t.skey, th.skey) {
			t.schedDown(pos)
		}
	}
	// Under the scheduler the target has already passed its Exit point;
	// done closes momentarily after, so this wait is bounded and makes
	// no scheduling decision.
	<-th.done
	if obs := rt.cfg.Observer; obs != nil {
		obs.Join(t.tid, th.tid)
	}
	rt.tracer.Append(telemetry.KindJoin, t.tid, -1, 0, int64(th.tid))
	return 0
}

func (t *thread) doMutexNew(pos token.Pos) int64 {
	rt := t.rt
	base, ok := rt.malloc(1)
	if !ok {
		t.fail(pos, "out of memory: mutexNew")
	}
	rt.mutexes.Store(base, &sync.Mutex{})
	return base
}

func (t *thread) doCondNew(pos token.Pos) int64 {
	rt := t.rt
	base, ok := rt.malloc(1)
	if !ok {
		t.fail(pos, "out of memory: condNew")
	}
	rt.conds.Store(base, &condState{})
	return base
}

func (t *thread) doMutexLock(addr int64, pos token.Pos) int64 {
	rt := t.rt
	mu := t.mutexAt(addr, pos)
	if rt.ctl != nil {
		// Real mutexes would block the token holder in the Go runtime
		// with no way to hand the token on; ownership is modeled in the
		// controller instead, which also gives deadlock detection.
		if !rt.ctl.Lock(t.skey, addr) {
			t.schedDown(pos)
		}
	} else {
		mu.Lock()
	}
	t.locks.Acquire(addr)
	rt.counters.LockAcquires.Add(1)
	rt.tracer.Append(telemetry.KindLockAcquire, t.tid, -1, addr, 0)
	if obs := rt.cfg.Observer; obs != nil {
		obs.Acquire(t.tid, addr)
	}
	return 0
}

func (t *thread) doMutexUnlock(addr int64, pos token.Pos) int64 {
	rt := t.rt
	mu := t.mutexAt(addr, pos)
	if !t.locks.Release(addr) {
		rt.report(ReportLock, pos,
			fmt.Sprintf("%s: thread %d unlocked a mutex it does not hold", pos, t.tid))
		return 0
	}
	rt.counters.LockReleases.Add(1)
	rt.tracer.Append(telemetry.KindLockRelease, t.tid, -1, addr, 0)
	if obs := rt.cfg.Observer; obs != nil {
		obs.Release(t.tid, addr)
	}
	if rt.ctl != nil {
		if !rt.ctl.Unlock(t.skey, addr) {
			t.schedDown(pos)
		}
	} else {
		mu.Unlock()
	}
	return 0
}

func (t *thread) doCondWait(cvAddr, mAddr int64, pos token.Pos) int64 {
	rt := t.rt
	cs := t.condAt(cvAddr, pos)
	mu := t.mutexAt(mAddr, pos)
	cs.mu.Lock()
	if cs.cond == nil {
		if rt.ctl == nil {
			cs.cond = sync.NewCond(mu)
		}
		cs.lock = mAddr
	} else if cs.lock != mAddr {
		cs.mu.Unlock()
		t.fail(pos, "condition variable used with two different mutexes")
	}
	if rt.ctl != nil && cs.lock == 0 {
		cs.lock = mAddr
	}
	cs.mu.Unlock()
	if !t.locks.Held(mAddr) {
		rt.report(ReportLock, pos,
			fmt.Sprintf("%s: thread %d waits on a condition without holding the mutex", pos, t.tid))
	}
	t.locks.Release(mAddr)
	rt.counters.LockReleases.Add(1)
	rt.tracer.Append(telemetry.KindLockRelease, t.tid, -1, mAddr, 0)
	if obs := rt.cfg.Observer; obs != nil {
		obs.Release(t.tid, mAddr)
	}
	if rt.ctl != nil {
		if !rt.ctl.Wait(t.skey, cvAddr, mAddr) {
			t.schedDown(pos)
		}
	} else {
		cs.cond.Wait()
	}
	t.locks.Acquire(mAddr)
	rt.counters.LockAcquires.Add(1)
	rt.tracer.Append(telemetry.KindLockAcquire, t.tid, -1, mAddr, 0)
	if obs := rt.cfg.Observer; obs != nil {
		obs.Acquire(t.tid, mAddr)
		obs.CondWake(t.tid, cvAddr)
	}
	return 0
}

func (t *thread) doCondSignal(cvAddr int64, broadcast bool, pos token.Pos) int64 {
	rt := t.rt
	cs := t.condAt(cvAddr, pos)
	cs.mu.Lock()
	cond := cs.cond
	cs.mu.Unlock()
	if obs := rt.cfg.Observer; obs != nil {
		obs.CondSignal(t.tid, cvAddr)
	}
	if rt.ctl != nil {
		// The controller picks which waiter wakes: wake order is a
		// recorded, explorable scheduling decision.
		if !rt.ctl.Signal(t.skey, cvAddr, broadcast) {
			t.schedDown(pos)
		}
	} else if cond != nil {
		if broadcast {
			cond.Broadcast()
		} else {
			cond.Signal()
		}
	}
	return 0
}

func (t *thread) doPrint(s string, rest []int64) int64 {
	var sb strings.Builder
	sb.WriteString(s)
	for _, v := range rest {
		fmt.Fprintf(&sb, " %d", v)
	}
	t.rt.output(sb.String())
	return 0
}

func (t *thread) doPrintInt(v int64) int64 {
	t.rt.output(fmt.Sprintf("%d\n", v))
	return 0
}

func (t *thread) doAssert(v int64, pos token.Pos) int64 {
	if v == 0 {
		t.fail(pos, "assertion failed")
	}
	return 0
}

func (t *thread) doSrand(seed int64) int64 {
	t.rng = uint64(seed)*2654435761 + 1
	return 0
}

func (t *thread) doSleepMs(ms int64) int64 {
	if t.rt.ctl != nil {
		// Virtual time: a sleep is just a scheduling point, so races a
		// real sleep would hide behind wall-clock separation become
		// explorable interleavings.
		t.schedPoint(sched.PointYield)
		return 0
	}
	if ms > 0 {
		time.Sleep(time.Duration(ms) * time.Millisecond)
	}
	return 0
}

func (t *thread) doYield() int64 {
	if t.rt.ctl != nil {
		t.schedPoint(sched.PointYield)
		return 0
	}
	runtime.Gosched()
	return 0
}

func (t *thread) doMemset(p, v, n int64, e *ir.BuiltinCall) int64 {
	for i := int64(0); i < n; i++ {
		t.builtinWrite(p+i, v, e.ArgChecks[0], e.Pos)
	}
	return 0
}

func (t *thread) doMemcpy(d, s, n int64, e *ir.BuiltinCall) int64 {
	for i := int64(0); i < n; i++ {
		v := t.builtinRead(s+i, e.ArgChecks[1], e.Pos)
		t.builtinWrite(d+i, v, e.ArgChecks[0], e.Pos)
	}
	return 0
}

func (t *thread) doStrcpy(d, s int64, e *ir.BuiltinCall) int64 {
	for i := int64(0); ; i++ {
		v := t.builtinRead(s+i, e.ArgChecks[1], e.Pos)
		t.builtinWrite(d+i, v, e.ArgChecks[0], e.Pos)
		if v == 0 {
			return 0
		}
	}
}

func (t *thread) doRecycle(p, n int64) int64 {
	rt := t.rt
	if p <= 0 || n <= 0 {
		return 0
	}
	// The custom allocator owns the memory layout; SharC only forgets
	// past accesses (and drops tracked references held inside).
	for i := int64(0); i < n && p+i < int64(len(rt.mem)); i++ {
		if old := t.loadRaw(p + i); old != 0 {
			t.dynStore(p+i, 0)
		} else {
			t.storeRaw(p+i, 0)
		}
	}
	rt.shadow.ClearRange(p, n)
	return 0
}

// ---------------------------------------------------------------------------
// checked library accesses

// builtinRead is a checked read on behalf of a library summary (§4.4).
func (t *thread) builtinRead(addr int64, chk ir.Check, pos token.Pos) int64 {
	t.checkAddr(addr, pos)
	t.countAccess(addr)
	t.applyCheck(addr, chk, false)
	t.observe(addr, false, chk.Site)
	return t.loadRaw(addr)
}

// builtinWrite is a checked write on behalf of a library summary; it uses
// the dynamic barrier test because the library has no static slot types.
func (t *thread) builtinWrite(addr, val int64, chk ir.Check, pos token.Pos) {
	t.checkAddr(addr, pos)
	t.countAccess(addr)
	t.applyCheck(addr, chk, true)
	t.observe(addr, true, chk.Site)
	t.dynStore(addr, val)
}

// readCString reads a NUL-terminated string with per-cell checks.
func (t *thread) readCString(p int64, chk ir.Check, pos token.Pos) string {
	var sb strings.Builder
	for i := int64(0); ; i++ {
		v := t.builtinRead(p+i, chk, pos)
		if v == 0 {
			return sb.String()
		}
		sb.WriteByte(byte(v))
		if i > 1<<20 {
			t.fail(pos, "unterminated string at 0x%x", p)
		}
	}
}

func (t *thread) mutexAt(addr int64, pos token.Pos) *sync.Mutex {
	v, ok := t.rt.mutexes.Load(addr)
	if !ok {
		t.fail(pos, "not a mutex: 0x%x", addr)
	}
	return v.(*sync.Mutex)
}

func (t *thread) condAt(addr int64, pos token.Pos) *condState {
	v, ok := t.rt.conds.Load(addr)
	if !ok {
		t.fail(pos, "not a condition variable: 0x%x", addr)
	}
	return v.(*condState)
}

// doSpawn starts a new ShC thread running the target function with one
// argument, returning a join handle.
func (t *thread) doSpawn(fnVal, arg int64, pos token.Pos) int64 {
	rt := t.rt
	idx := ir.DecodeFunc(fnVal)
	if idx < 0 || idx >= len(rt.prog.Funcs) {
		t.fail(pos, "spawn of invalid function pointer 0x%x", fnVal)
	}
	fn := rt.prog.Funcs[idx]
	if fn.NumParams != 1 {
		t.fail(pos, "spawn target %s must take one argument", fn.Name)
	}
	var tid int
	if rt.ctl != nil {
		// The token holder must not block in a channel receive: when the id
		// pool is dry, hand the token away until some thread exits (exiting
		// threads return their id before their Exit point).
		for {
			select {
			case tid = <-rt.tidPool:
			default:
				if !rt.ctl.AwaitExit(t.skey) {
					t.schedDown(pos)
				}
				continue
			}
			break
		}
	} else {
		tid = <-rt.tidPool
	}
	// New concurrency: drop every thread's cached check validations so the
	// fresh thread's accesses are re-validated against current bits.
	rt.shadow.Invalidate()
	handle := rt.nextHandle.Add(1)
	th := &threadHandle{tid: tid, done: make(chan struct{})}
	if rt.ctl != nil {
		th.skey = rt.ctl.Register()
	}
	rt.handles.Store(handle, th)
	if rt.ctl != nil {
		rt.bindKey(th.skey, tid)
	}
	rt.counters.Spawns.Add(1)
	rt.tracer.Append(telemetry.KindSpawn, t.tid, -1, 0, int64(tid))
	if obs := rt.cfg.Observer; obs != nil {
		obs.Spawn(t.tid, tid)
	}
	rt.trackLive(1)
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		defer close(th.done)
		nt := rt.newThread(tid)
		nt.skey = th.skey
		if rt.ctl != nil {
			rt.ctl.Begin(th.skey)
		}
		defer rt.threadEpilogue(nt)
		nt.invoke(idx, []int64{arg})
	}()
	t.schedPoint(sched.PointSpawn)
	return handle
}
