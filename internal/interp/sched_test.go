package interp_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/parser"
	"repro/internal/sched"
)

// buildCorpus compiles a testdata program with the given options.
func buildCorpus(t *testing.T, file string, copts compile.Options) *ir.Program {
	t.Helper()
	a, err := core.Analyze(parser.Source{Name: file, Text: readCorpus(t, file)})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := a.Build(copts)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// schedRun executes prog under the given strategy, recording the schedule.
type schedRunResult struct {
	exit     int64
	err      error
	reports  string
	trace    string
	deadlock bool
}

func schedRun(t *testing.T, prog *ir.Program, cfg interp.Config, s sched.Strategy) schedRunResult {
	t.Helper()
	ctl := sched.New(s, sched.Options{Record: true})
	cfg.Sched = ctl
	rt := interp.New(prog, cfg)
	exit, err := rt.Run()
	data, merr := ctl.Trace().Marshal()
	if merr != nil {
		t.Fatal(merr)
	}
	return schedRunResult{
		exit:     exit,
		err:      err,
		reports:  rt.FormatReports(),
		trace:    string(data),
		deadlock: ctl.Deadlocked(),
	}
}

// TestSchedCorpusClean: every corpus program, run under seeded cooperative
// scheduling, still produces its expected exit value with zero violation
// reports — the scheduler changes interleavings, not semantics. barrier.shc
// exercises the controller's cond wait/broadcast path, bank.shc its
// modeled mutexes.
func TestSchedCorpusClean(t *testing.T) {
	for _, tc := range corpusCases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			prog := buildCorpus(t, tc.file, compile.DefaultOptions())
			for _, seed := range []int64{1, 2, 3} {
				r := schedRun(t, prog, interp.DefaultConfig(), sched.NewRandom(seed))
				if r.err != nil {
					t.Fatalf("seed %d: %v", seed, r.err)
				}
				if tc.exit >= 0 && r.exit != tc.exit {
					t.Fatalf("seed %d: exit = %d, want %d", seed, r.exit, tc.exit)
				}
				if r.reports != "" {
					t.Fatalf("seed %d: unexpected reports:\n%s", seed, r.reports)
				}
			}
		})
	}
}

// TestSchedDeterminism: the same (program, seed) produces byte-identical
// traces, reports, and exit values across 20 repeated runs, under every
// elision config (none, static elision, check cache, both).
func TestSchedDeterminism(t *testing.T) {
	configs := []struct {
		name  string
		elide bool
		cache bool
	}{
		{"plain", false, false},
		{"elide", true, false},
		{"cache", false, true},
		{"elide+cache", true, true},
	}
	for _, file := range []string{"bank.shc", "barrier.shc", "racy_handoff.shc"} {
		for _, cc := range configs {
			t.Run(file+"/"+cc.name, func(t *testing.T) {
				copts := compile.DefaultOptions()
				copts.Elide = cc.elide
				prog := buildCorpus(t, file, copts)
				cfg := interp.DefaultConfig()
				cfg.CheckCache = cc.cache
				var first schedRunResult
				for i := 0; i < 20; i++ {
					r := schedRun(t, prog, cfg, sched.NewRandom(42))
					if i == 0 {
						first = r
						continue
					}
					if r.exit != first.exit || r.reports != first.reports || r.trace != first.trace {
						t.Fatalf("run %d diverged from run 0:\nexit %d vs %d\nreports:\n%s---\n%s\ntrace equal: %v",
							i, r.exit, first.exit, r.reports, first.reports, r.trace == first.trace)
					}
				}
			})
		}
	}
}

// TestSchedRecordReplay: a recorded schedule replays to the identical
// outcome, byte for byte, with no divergence.
func TestSchedRecordReplay(t *testing.T) {
	for _, file := range []string{"bank.shc", "barrier.shc", "racy_pair.shc"} {
		t.Run(file, func(t *testing.T) {
			prog := buildCorpus(t, file, compile.DefaultOptions())
			rec := schedRun(t, prog, interp.DefaultConfig(), sched.NewRandom(11))
			tr, err := sched.UnmarshalTrace([]byte(rec.trace))
			if err != nil {
				t.Fatal(err)
			}
			rep := sched.NewReplay(tr)
			got := schedRun(t, prog, interp.DefaultConfig(), rep)
			if rep.Diverged() {
				t.Fatal("replay diverged on the recording program")
			}
			if got.exit != rec.exit || got.reports != rec.reports {
				t.Fatalf("replay outcome differs:\nexit %d vs %d\nreports:\n%s---\n%s",
					got.exit, rec.exit, got.reports, rec.reports)
			}
		})
	}
}

// TestSchedCrossElisionReplay is the elision soundness oracle: a schedule
// recorded on the unelided build replays without divergence on the elided
// build (scheduling points anchor to memory accesses, which elision never
// removes), and the elided build must produce the same reports and exit
// value under that fixed schedule.
func TestSchedCrossElisionReplay(t *testing.T) {
	for _, file := range []string{"bank.shc", "barrier.shc", "racy_handoff.shc", "racy_reader.shc"} {
		t.Run(file, func(t *testing.T) {
			plain := buildCorpus(t, file, compile.DefaultOptions())
			elideOpts := compile.DefaultOptions()
			elideOpts.Elide = true
			elided := buildCorpus(t, file, elideOpts)

			for _, seed := range []int64{3, 17} {
				rec := schedRun(t, plain, interp.DefaultConfig(), sched.NewRandom(seed))
				tr, err := sched.UnmarshalTrace([]byte(rec.trace))
				if err != nil {
					t.Fatal(err)
				}
				rep := sched.NewReplay(tr)
				cfg := interp.DefaultConfig()
				cfg.CheckCache = true // exercise the runtime half of elision too
				got := schedRun(t, elided, cfg, rep)
				if rep.Diverged() {
					t.Fatalf("seed %d: trace did not align across elision configs", seed)
				}
				if got.exit != rec.exit {
					t.Fatalf("seed %d: exit %d under elision, %d unelided", seed, got.exit, rec.exit)
				}
				if got.reports != rec.reports {
					t.Fatalf("seed %d: elision changed reports under a fixed schedule:\nunelided:\n%s---\nelided:\n%s",
						seed, rec.reports, got.reports)
				}
			}
		})
	}
}

// TestExploreFindsSeededRaces: each racy corpus program is detected within
// 100 schedules by the explorer, while a single free-running execution
// misses at least one of them (the wall-clock lifetime separation the
// programs are built around).
func TestExploreFindsSeededRaces(t *testing.T) {
	racy := []string{"racy_handoff.shc", "racy_pair.shc", "racy_reader.shc"}
	freeMisses := 0
	for _, file := range racy {
		t.Run(file, func(t *testing.T) {
			prog := buildCorpus(t, file, compile.DefaultOptions())

			// One free-running execution.
			rt := interp.New(prog, interp.DefaultConfig())
			if _, err := rt.Run(); err != nil {
				t.Fatalf("free run: %v", err)
			}
			freeRaces := len(rt.ReportsOfKind(interp.ReportRace))
			if freeRaces == 0 {
				freeMisses++
			}

			sum := interp.Explore(prog, interp.DefaultConfig(), interp.ExploreOptions{
				Schedules: 100, Strategy: "mix", Seed: 1,
			})
			races := 0
			for _, f := range sum.Findings {
				if f.Kind == interp.ReportRace {
					races++
				}
			}
			if races == 0 {
				t.Fatalf("explorer missed the race in %d schedules (%d findings total)",
					sum.Schedules, len(sum.Findings))
			}
		})
	}
	if freeMisses == 0 {
		t.Error("every free-running execution caught its race; the corpus no longer demonstrates the explorer's advantage")
	}
}

// TestSchedDeadlockDetection: an ABBA lock cycle written in ShC is
// detected by the controller (a free run would hang forever), surfacing
// as a thread-failure report rather than a hung test.
func TestSchedDeadlockDetection(t *testing.T) {
	const src = `
struct locks {
	mutex *a;
	mutex *b;
};

void *w1(void *d) {
	struct locks *l = d;
	mutexLock(l->a);
	sleepMs(5);
	mutexLock(l->b);
	mutexUnlock(l->b);
	mutexUnlock(l->a);
	return NULL;
}

void *w2(void *d) {
	struct locks *l = d;
	mutexLock(l->b);
	sleepMs(5);
	mutexLock(l->a);
	mutexUnlock(l->a);
	mutexUnlock(l->b);
	return NULL;
}

int main(void) {
	struct locks *l = malloc(sizeof(struct locks));
	l->a = mutexNew();
	l->b = mutexNew();
	struct locks dynamic *ld = SCAST(struct locks dynamic *, l);
	int h1 = spawn(w1, ld);
	int h2 = spawn(w2, ld);
	join(h1);
	join(h2);
	return 0;
}
`
	a, err := core.Analyze(parser.Source{Name: "abba.shc", Text: src})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := a.Build(compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for seed := int64(0); seed < 20 && !found; seed++ {
		r := schedRun(t, prog, interp.DefaultConfig(), sched.NewRandom(seed))
		if r.deadlock {
			found = true
			if !strings.Contains(r.reports, "deadlock") {
				t.Fatalf("deadlock declared but not reported:\n%s", r.reports)
			}
		}
	}
	if !found {
		t.Fatal("no seed in 0..19 exposed the ABBA deadlock")
	}
}

// TestSchedTidReuse: spawning far more threads than the tid pool holds
// forces id recycling through AwaitExit; recycled threads must start with
// clean lock logs and shadow state (no false reports), and the run must
// complete rather than starve.
func TestSchedTidReuse(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("struct cell {\n\tmutex *m;\n\tint locked(m) counter;\n};\n\n")
	sb.WriteString("void *w(void *d) {\n\tstruct cell *c = d;\n\tmutexLock(c->m);\n\tc->counter = c->counter + 1;\n\tmutexUnlock(c->m);\n\treturn NULL;\n}\n\n")
	sb.WriteString("int main(void) {\n\tstruct cell *c = malloc(sizeof(struct cell));\n\tc->m = mutexNew();\n")
	sb.WriteString("\tmutexLock(c->m);\n\tc->counter = 0;\n\tmutexUnlock(c->m);\n")
	sb.WriteString("\tstruct cell dynamic *cd = SCAST(struct cell dynamic *, c);\n")
	// 40 sequential spawn+join pairs > the 31-entry tid pool.
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "\tint h%d = spawn(w, cd);\n\tjoin(h%d);\n", i, i)
	}
	sb.WriteString("\tmutexLock(cd->m);\n\tint n = cd->counter;\n\tmutexUnlock(cd->m);\n\treturn n;\n}\n")

	a, err := core.Analyze(parser.Source{Name: "reuse.shc", Text: sb.String()})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := a.Build(compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := schedRun(t, prog, interp.DefaultConfig(), sched.NewRandom(5))
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.exit != 40 {
		t.Fatalf("exit = %d, want 40", r.exit)
	}
	if r.reports != "" {
		t.Fatalf("unexpected reports:\n%s", r.reports)
	}
}
