package interp_test

// The portfolio explorer's determinism contract, tested three ways:
//
//  1. Worker-count independence: the full summary (JSON) and the merged
//     event trace are byte-identical for workers ∈ {1, 2, 8}, every
//     sharing topology, and varied GOMAXPROCS.
//  2. Sequential equivalence: `Workers: 1` matches an independent
//     in-test sequential reference — a plain loop with no goroutines, no
//     sharing, and no memo skipping — on the full corpus.
//  3. Process isolation: two different programs explored concurrently
//     (metrics and tracing on) each produce exactly their solo output,
//     proving no shared mutable state across interp/sched/shadow/telemetry.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/compile"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sched"
)

// exploreBytes renders everything observable from an exploration: the
// summary JSON plus the merged trace JSONL (empty when tracing is off).
func exploreBytes(t *testing.T, sum *interp.ExploreSummary) (string, string) {
	t.Helper()
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if sum.Trace != nil {
		if err := sum.Trace.WriteJSONL(&trace); err != nil {
			t.Fatal(err)
		}
	}
	return string(data), trace.String()
}

// TestExploreWorkerCountIndependence pins the contract the portfolio
// design rests on: same seed ⇒ byte-identical output for every worker
// count, sharing topology, and GOMAXPROCS value.
func TestExploreWorkerCountIndependence(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, file := range []string{"racy_pair.shc", "racy_handoff.shc", "bank.shc"} {
		file := file
		t.Run(file, func(t *testing.T) {
			prog := buildCorpus(t, file, compile.DefaultOptions())
			cfg := interp.DefaultConfig()
			cfg.Metrics = true
			cfg.TraceCapacity = 512 // smaller than the event stream: the ring-tail merge is exercised
			run := func(workers int, share string) (string, string) {
				sum := interp.Explore(prog, cfg, interp.ExploreOptions{
					Schedules: 40, Seed: 3, Workers: workers, Share: share,
				})
				return exploreBytes(t, sum)
			}
			baseSum, baseTrace := run(1, "local")
			if baseTrace == "" {
				t.Fatal("tracing produced no events")
			}
			for _, workers := range []int{2, 8} {
				for _, share := range []string{"none", "local", "global"} {
					for _, procs := range []int{1, 4} {
						runtime.GOMAXPROCS(procs)
						sumJSON, trace := run(workers, share)
						if sumJSON != baseSum {
							t.Errorf("workers=%d share=%s procs=%d: summary JSON diverges from workers=1",
								workers, share, procs)
						}
						if trace != baseTrace {
							t.Errorf("workers=%d share=%s procs=%d: merged trace diverges from workers=1",
								workers, share, procs)
						}
					}
				}
			}
		})
	}
}

// referenceStrategy is an independent copy of the explorer's strategy
// derivation, pinned here so a drive-by change to the generator surfaces
// as a test failure rather than silently reshaping every exploration.
func referenceStrategy(kind string, seed int64, i int, horizon int64) sched.Strategy {
	if horizon < 16 {
		horizon = 4096
	}
	derived := seed*1_000_003 + int64(i)
	switch kind {
	case "random":
		return sched.NewRandom(derived)
	case "pct":
		return sched.NewPCT(derived, 3, horizon)
	case "rr":
		return sched.NewRoundRobin(int64(1 + i%4))
	default:
		switch i % 4 {
		case 0:
			return sched.NewRoundRobin(int64(1 + (i/4)%4))
		case 1, 2:
			return sched.NewPCT(derived, 3, horizon)
		default:
			return sched.NewRandom(derived)
		}
	}
}

// referenceExplore is the sequential reference: one schedule at a time, no
// goroutines, no sharing layer, no memo skipping — every schedule executes,
// duplicates included. The portfolio explorer must match it exactly.
func referenceExplore(t *testing.T, build func(ctl *sched.Controller) *interp.Runtime, kind string, seed int64, schedules int) *interp.ExploreSummary {
	t.Helper()
	sum := &interp.ExploreSummary{Schedules: schedules}
	seen := make(map[string]bool)
	firstOf := make(map[string]int)
	var horizon int64
	for i := 0; i < schedules; i++ {
		h := horizon
		if i == 0 {
			h = 0 // calibration: schedule 0 runs under the default horizon
		}
		strat := referenceStrategy(kind, seed, i, h)
		ctl := sched.New(strat, sched.Options{})
		rt := build(ctl)
		rt.Run()
		if i == 0 {
			horizon = ctl.Decisions()
		}
		identity := fmt.Sprintf("%s|%d", strat.Name(), strat.Seed())
		dup := false
		if j, ok := firstOf[identity]; ok && j < i {
			dup = true
		} else {
			firstOf[identity] = i
		}
		sum.Decisions += ctl.Decisions()
		if dup {
			sum.Duplicates++
		}
		out := interp.ScheduleOutcome{
			Index:     i,
			Strategy:  strat.Name(),
			Seed:      strat.Seed(),
			Deadlock:  ctl.Deadlocked(),
			Duplicate: dup,
		}
		for _, r := range rt.Reports() {
			out.Reports++
			key := fmt.Sprintf("%d|%s:%d:%d", r.Kind, r.Pos.File, r.Pos.Line, r.Pos.Col)
			if seen[key] {
				continue
			}
			seen[key] = true
			out.New++
			sum.Findings = append(sum.Findings, interp.Finding{
				Kind:     r.Kind,
				KindName: r.Kind.String(),
				Pos:      r.Pos,
				Site:     fmt.Sprintf("%s:%d:%d", r.Pos.File, r.Pos.Line, r.Pos.Col),
				Msg:      r.Msg,
				Schedule: i,
				Strategy: strat.Name(),
				Seed:     strat.Seed(),
			})
		}
		sum.Outcomes = append(sum.Outcomes, out)
	}
	return sum
}

// TestExploreSequentialEquivalence pins Workers:1 (and, transitively via
// the independence test, every worker count) against the sequential
// reference on the full corpus.
func TestExploreSequentialEquivalence(t *testing.T) {
	for _, file := range allCorpusFiles {
		file := file
		t.Run(file, func(t *testing.T) {
			prog := buildCorpus(t, file, compile.DefaultOptions())
			for _, kind := range []string{"mix", "rr"} {
				got := interp.Explore(prog, interp.DefaultConfig(), interp.ExploreOptions{
					Schedules: 24, Strategy: kind, Seed: 5, Workers: 1,
				})
				want := referenceExplore(t, func(ctl *sched.Controller) *interp.Runtime {
					cfg := interp.DefaultConfig()
					cfg.Sched = ctl
					return interp.New(prog, cfg)
				}, kind, 5, 24)
				gj, err := json.Marshal(got)
				if err != nil {
					t.Fatal(err)
				}
				wj, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}
				if string(gj) != string(wj) {
					t.Errorf("%s: portfolio Workers:1 diverges from the sequential reference\ngot:  %s\nwant: %s",
						kind, gj, wj)
				}
			}
		})
	}
}

// TestExploreProcessIsolation explores two different programs concurrently
// with full instrumentation and demands each produces exactly its solo
// output — the multiple-checked-programs-in-one-process guarantee.
func TestExploreProcessIsolation(t *testing.T) {
	progA := buildCorpus(t, "racy_pair.shc", compile.DefaultOptions())
	progB := buildCorpus(t, "bank.shc", compile.DefaultOptions())
	cfg := interp.DefaultConfig()
	cfg.Metrics = true
	cfg.TraceCapacity = 256
	run := func(p *ir.Program) (string, string) {
		sum := interp.Explore(p, cfg, interp.ExploreOptions{
			Schedules: 20, Seed: 7, Workers: 4, Share: "local",
		})
		return exploreBytes(t, sum)
	}
	soloA1, soloA2 := run(progA)
	soloB1, soloB2 := run(progB)
	var wg sync.WaitGroup
	var concA1, concA2, concB1, concB2 string
	wg.Add(2)
	go func() { defer wg.Done(); concA1, concA2 = run(progA) }()
	go func() { defer wg.Done(); concB1, concB2 = run(progB) }()
	wg.Wait()
	if concA1 != soloA1 || concA2 != soloA2 {
		t.Error("racy_pair: concurrent exploration diverges from its solo run")
	}
	if concB1 != soloB1 || concB2 != soloB2 {
		t.Error("bank: concurrent exploration diverges from its solo run")
	}
}
