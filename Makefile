GO ?= go

.PHONY: all build vet test race verify bench elision explore explore-smoke portfolio-smoke portfolio-race portfolio profile-smoke engine-smoke vet-smoke vet2-smoke obs vm vet-bench ablation serve-smoke serve-bench obs-smoke

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/shadow ./internal/interp ./internal/refcount ./internal/sched ./internal/telemetry ./internal/portfolio ./internal/serve ./internal/obsrv ./internal/absint

# verify is the gate for every change: build, go vet, the full test suite,
# the race detector over the concurrency-bearing packages, and the
# exploration, portfolio, profile, cross-engine, static-analysis, and
# execution-service smokes.
verify: build vet test race explore-smoke portfolio-smoke profile-smoke engine-smoke vet-smoke vet2-smoke serve-smoke obs-smoke

bench:
	$(GO) test -bench=. -benchmem .

# elision regenerates BENCH_elision.json (the check-elision ladder).
elision:
	$(GO) run ./cmd/sharc-bench -elision

# explore regenerates BENCH_explore.json (exploration vs free running).
explore:
	$(GO) run ./cmd/sharc-bench -explore

# obs regenerates BENCH_obs.json (telemetry overhead tiers).
obs:
	$(GO) run ./cmd/sharc-bench -obs -reps 5

# explore-smoke runs the schedule explorer over two clean corpus programs
# at three base seeds each; any finding makes sharc exit non-zero and
# fails the target. Kept small so the whole sweep stays well under 30s.
explore-smoke:
	@for prog in internal/interp/testdata/bank.shc internal/interp/testdata/barrier.shc; do \
		for seed in 1 2 3; do \
			echo "explore $$prog seed=$$seed"; \
			$(GO) run ./cmd/sharc explore -schedules 10 -seed $$seed $$prog || exit 1; \
		done; \
	done

# portfolio-smoke pins the worker-count-independence contract from the
# shell: the same seeded exploration at 1, 2, and 8 workers must write
# byte-identical JSON, across all three sharing topologies.
portfolio-smoke:
	@$(GO) run ./cmd/sharc explore -schedules 20 -seed 5 -workers 1 -json /tmp/shc-pf-1.json internal/interp/testdata/racy_pair.shc > /dev/null 2>&1; \
	for workers in 2 8; do \
		for share in none local global; do \
			$(GO) run ./cmd/sharc explore -schedules 20 -seed 5 -workers $$workers -share $$share -json /tmp/shc-pf-k.json internal/interp/testdata/racy_pair.shc > /dev/null 2>&1; \
			cmp /tmp/shc-pf-1.json /tmp/shc-pf-k.json || { echo "portfolio output diverges at workers=$$workers share=$$share"; exit 1; }; \
		done; \
	done
	@echo "portfolio-smoke ok"

# portfolio-race hammers a multi-worker exploration of the racy corpus
# under the race detector (the explorer's internal concurrency, not just
# the packages' unit tests).
portfolio-race:
	$(GO) test -race ./internal/interp -run 'TestExploreWorkerCountIndependence|TestExploreProcessIsolation' -count 1

# portfolio regenerates BENCH_portfolio.json (scaling vs worker count).
portfolio:
	$(GO) run ./cmd/sharc-bench -portfolio -reps 3

# profile-smoke pins the deterministic-profile claim from the shell: the
# same seeded profile twice, byte-identical, with the trace export intact.
profile-smoke:
	@$(GO) run ./cmd/sharc profile -seed 7 examples/profile/hotsites.shc > /tmp/shc-prof-a.txt || exit 1
	@$(GO) run ./cmd/sharc profile -seed 7 examples/profile/hotsites.shc > /tmp/shc-prof-b.txt || exit 1
	@cmp /tmp/shc-prof-a.txt /tmp/shc-prof-b.txt || { echo "profile not deterministic"; exit 1; }
	@$(GO) run ./cmd/sharc profile -seed 7 -trace-out /tmp/shc-prof.jsonl examples/profile/hotsites.shc > /dev/null || exit 1
	@echo "profile-smoke ok"

# engine-smoke is the cross-engine differential gate from the shell: the
# same seeded runs through the tree walker and the register VM must print
# byte-identical output (reports, stats, everything on stdout).
engine-smoke:
	@for prog in internal/interp/testdata/bank.shc examples/profile/hotsites.shc; do \
		$(GO) run ./cmd/sharc run -seed 11 -engine tree $$prog > /tmp/shc-eng-tree.txt 2>&1; \
		$(GO) run ./cmd/sharc run -seed 11 -engine vm   $$prog > /tmp/shc-eng-vm.txt   2>&1; \
		cmp /tmp/shc-eng-tree.txt /tmp/shc-eng-vm.txt || { echo "engine divergence on $$prog"; exit 1; }; \
	done
	@echo "engine-smoke ok"

# vet-smoke runs the static analyzer over the whole corpus and asserts
# the partition is exact: every clean program vets with zero must
# findings (exit 0), every seeded-racy program with at least one (exit 1).
vet-smoke:
	@for prog in internal/interp/testdata/*.shc; do \
		case $$prog in \
		*racy_*) \
			$(GO) run ./cmd/sharc vet $$prog > /dev/null 2>/dev/null; \
			[ $$? -eq 1 ] || { echo "vet missed the seeded race in $$prog"; exit 1; };; \
		*) \
			$(GO) run ./cmd/sharc vet $$prog > /dev/null || { echo "false must verdict in $$prog"; exit 1; };; \
		esac; \
	done
	@echo "vet-smoke ok"

# vet2-smoke is the abstract-interpretation acceptance gate: on every
# Table-1 benchmark the absint tier must push the statically avoided
# check fraction past 90%, resolve every would-be finding, and keep the
# discharged build's reports and exit byte-identical to the elide-only
# build on both engines.
vet2-smoke:
	$(GO) test ./internal/bench -run TestVet2Smoke -count 1

# serve-smoke drives the execution service from the shell the way an
# operator would: build both binaries, start `sharc serve` on an ephemeral
# port, fire the sharc-bench assertion harness at it (1000 sequential +
# 100 concurrent mixed-program requests, every reply byte-deterministic),
# then SIGTERM and require a clean drain (exit 0). The queue is raised to
# 256 because the harness throws 100 simultaneous arrivals at 4 workers —
# the default queue of 64 would (correctly) refuse the overflow.
serve-smoke:
	@$(GO) build -o /tmp/shc-serve-bin ./cmd/sharc
	@$(GO) build -o /tmp/shc-serve-bench ./cmd/sharc-bench
	@rm -f /tmp/shc-serve-addr; \
	/tmp/shc-serve-bin serve -addr 127.0.0.1:0 -addr-file /tmp/shc-serve-addr -queue 256 2>/tmp/shc-serve-log & \
	pid=$$!; \
	for i in $$(seq 1 200); do [ -s /tmp/shc-serve-addr ] && break; sleep 0.05; done; \
	[ -s /tmp/shc-serve-addr ] || { echo "serve never came up"; cat /tmp/shc-serve-log; kill $$pid; exit 1; }; \
	/tmp/shc-serve-bench -serve-smoke -serve-addr "$$(cat /tmp/shc-serve-addr)" || { kill $$pid; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "serve did not drain cleanly"; cat /tmp/shc-serve-log; exit 1; }
	@echo "serve-smoke ok"

# obs-smoke drives the observability surface of a real `sharc serve`
# process from the shell: 50 requests with unique X-Sharc-Request ids and
# deterministic replies, /metrics parsing as Prometheus text, a forced
# slow request leaving a five-phase span capture in the capture dir, and
# SIGTERM flipping /healthz to 503 during the drain grace before a clean
# exit 0.
obs-smoke:
	@$(GO) build -o /tmp/shc-obs-bin ./cmd/sharc
	@$(GO) build -o /tmp/shc-obs-bench ./cmd/sharc-bench
	@rm -rf /tmp/shc-obs-caps /tmp/shc-obs-addr /tmp/shc-obs-access.log; \
	mkdir -p /tmp/shc-obs-caps; \
	/tmp/shc-obs-bin serve -addr 127.0.0.1:0 -addr-file /tmp/shc-obs-addr \
		-slow-ms 1 -capture-dir /tmp/shc-obs-caps \
		-access-log /tmp/shc-obs-access.log -drain-grace-ms 1500 \
		2>/tmp/shc-obs-log & \
	pid=$$!; \
	for i in $$(seq 1 200); do [ -s /tmp/shc-obs-addr ] && break; sleep 0.05; done; \
	[ -s /tmp/shc-obs-addr ] || { echo "serve never came up"; cat /tmp/shc-obs-log; kill $$pid; exit 1; }; \
	/tmp/shc-obs-bench -obs-smoke -serve-addr "$$(cat /tmp/shc-obs-addr)" \
		-obs-pid $$pid -obs-capture-dir /tmp/shc-obs-caps || { kill $$pid; exit 1; }; \
	wait $$pid || { echo "serve did not drain cleanly"; cat /tmp/shc-obs-log; exit 1; }; \
	[ -s /tmp/shc-obs-access.log ] || { echo "access log is empty"; exit 1; }
	@echo "obs-smoke ok"

# serve-bench regenerates BENCH_serve.json (service load scenarios).
serve-bench:
	$(GO) run ./cmd/sharc-bench -serve

# vm regenerates BENCH_vm.json (tree walker vs register VM speedups).
vm:
	$(GO) run ./cmd/sharc-bench -vm

# vet-bench regenerates BENCH_vet.json (static discharge vs elision alone).
vet-bench:
	$(GO) run ./cmd/sharc-bench -vet

# ablation regenerates BENCH_ablation.json (avoided checks per absint tier).
ablation:
	$(GO) run ./cmd/sharc-bench -ablate
