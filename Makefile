GO ?= go

.PHONY: all build vet test race verify bench elision

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/shadow ./internal/interp ./internal/refcount

# verify is the gate for every change: build, vet, the full test suite, and
# the race detector over the concurrency-bearing packages.
verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem .

# elision regenerates BENCH_elision.json (the check-elision ladder).
elision:
	$(GO) run ./cmd/sharc-bench -elision
