package sharc

// Golden-file tests for the telemetry reporting and trace-export surfaces:
// under the deterministic scheduler a fixed (program, seed) pair must
// produce byte-identical profile tables, JSONL traces, and Chrome traces.
// Regenerate with UPDATE_GOLDEN=1 go test -run TestTelemetryGolden ./...

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// buildHotsites compiles the examples/profile program with telemetry on.
func buildHotsites(t *testing.T, elide, cache bool) *Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("examples", "profile", "hotsites.shc"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Check(Source{Name: "hotsites.shc", Text: string(src)})
	if err != nil {
		t.Fatal(err)
	}
	if !a.OK() {
		t.Fatalf("static checking failed: %v", a.Errors())
	}
	opts := DefaultOptions()
	opts.Metrics = true
	opts.TraceEvents = 1 << 13
	opts.ElideChecks = elide
	opts.CheckCache = cache
	p, err := a.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s differs from golden file\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestTelemetryGoldenProfile(t *testing.T) {
	p := buildHotsites(t, false, false)
	res, err := p.RunSeeded(1)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	checkGolden(t, "profile_hotsites.golden", []byte(telemetry.FormatProfile(res.Telemetry, 10)))
	checkGolden(t, "summary_hotsites.golden", []byte(telemetry.FormatSummary(res.Telemetry)))
}

func TestTelemetryGoldenProfileElided(t *testing.T) {
	p := buildHotsites(t, true, true)
	res, err := p.RunSeeded(1)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	checkGolden(t, "profile_hotsites_elided.golden", []byte(telemetry.FormatProfile(res.Telemetry, 10)))
}

func TestTelemetryGoldenTraces(t *testing.T) {
	p := buildHotsites(t, false, false)
	res, err := p.RunSeeded(1)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Trace == nil {
		t.Fatal("trace missing")
	}
	if res.Trace.Dropped() != 0 {
		t.Fatalf("ring buffer dropped %d events; raise capacity for a stable golden", res.Trace.Dropped())
	}
	var jsonl bytes.Buffer
	if err := res.Trace.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_hotsites.jsonl.golden", jsonl.Bytes())
	var chrome bytes.Buffer
	if err := res.Trace.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_hotsites.chrome.golden", chrome.Bytes())
}

// TestTelemetryDeterministic is the seed-stability half of the golden
// claim: two fresh builds and runs with the same seed agree byte for byte,
// and a different seed still produces a well-formed (if different) table.
func TestTelemetryDeterministic(t *testing.T) {
	render := func(seed int64) string {
		res, err := buildHotsites(t, false, false).RunSeeded(seed)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		var jsonl bytes.Buffer
		if err := res.Trace.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		return telemetry.FormatProfile(res.Telemetry, 10) + jsonl.String()
	}
	a, b := render(42), render(42)
	if a != b {
		t.Fatal("same seed produced different profile or trace bytes")
	}
}
