// Profile: the runtime-telemetry faces through the public API.
//
// The work-queue program in hotsites.shc mixes every sharing regime:
// lock-protected dynamic data, locked-mode fields, a readonly table, a
// post-join private pass, and one deliberately unprotected counter. One
// seeded run with Options.Metrics produces the hot-site table `sharc
// profile` prints — including the suggested annotations: locked(l) for the
// consistently-locked items, readonly for the table, investigate for the
// unprotected counter. A second run with TraceEvents shows the structured
// event stream the -trace-out flag exports.
package main

import (
	_ "embed"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/telemetry"
)

//go:embed hotsites.shc
var hotsites string

func main() {
	a, err := sharc.Check(sharc.Source{Name: "hotsites.shc", Text: hotsites})
	if err != nil {
		fail(err)
	}
	if !a.OK() {
		fail(fmt.Errorf("static checking failed: %s", a.Errors()[0]))
	}

	opts := sharc.DefaultOptions()
	opts.Metrics = true
	opts.TraceEvents = 1 << 12
	p, err := a.Build(opts)
	if err != nil {
		fail(err)
	}

	res, err := p.RunSeeded(1)
	if err != nil {
		fmt.Println("runtime error:", err)
	}

	fmt.Println("=== hot-site profile (sharc profile view) ===")
	fmt.Print(telemetry.FormatProfile(res.Telemetry, 5))

	fmt.Println()
	fmt.Println("=== telemetry summary (sharc run -metrics view) ===")
	fmt.Print(telemetry.FormatSummary(res.Telemetry))

	fmt.Println()
	fmt.Println("=== first trace events (sharc run -trace-out view) ===")
	var jsonl strings.Builder
	if err := res.Trace.WriteJSONL(&jsonl); err != nil {
		fail(err)
	}
	lines := strings.SplitN(jsonl.String(), "\n", 9)
	for _, l := range lines[:len(lines)-1] {
		fmt.Println(l)
	}
	fmt.Printf("... %d events total, %d dropped by the ring buffer\n",
		res.Trace.Total(), res.Trace.Dropped())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "profile:", err)
	os.Exit(1)
}
