// Replay walkthrough: catching a schedule-dependent race deterministically.
//
// The program below has a real data race — main and a worker both write the
// unannotated (inferred-dynamic) global g — but a sleep separates the two
// threads' wall-clock lifetimes, and SharC's shadow memory clears a thread's
// reader/writer bits when it exits, so a free-running execution almost never
// reports it. The walkthrough:
//
//  1. RECORD: run under the deterministic cooperative scheduler, sweeping
//     seeds until one interleaves the lifetimes and the conflict is
//     reported, and record that schedule as a decision trace
//     (CLI: sharc run -seed N -record trace.json prog.shc).
//  2. REPLAY: re-execute the trace — the identical reports come back, byte
//     for byte, every time (CLI: sharc run -replay trace.json prog.shc).
//     The race is now a regression test, not a heisenbug.
//  3. FIX: declare the sharing strategy — move the cell into a struct whose
//     fields are locked(m), lock around every access.
//  4. REPLAY CLEAN: the fixed program reports nothing under the recorded
//     schedule, nor under the whole seed sweep that exposed the bug.
package main

import (
	"fmt"
	"os"

	"repro"
)

// racy: the handoff as first written — no annotations, no locks. The race
// between "g[0] = 41" (worker) and "g[0] = g[0] + 1" (main) is hidden by
// the sleep on a free-running scheduler.
const racy = `
int g[2];

void *worker(void *d) {
	g[0] = 41;
	g[1] = g[1] + 1;
	return NULL;
}

int main(void) {
	int h = spawn(worker, NULL);
	sleepMs(20);
	g[0] = g[0] + 1;
	join(h);
	return 7;
}
`

// fixed: the same program with the sharing strategy declared — the cell
// lives behind a mutex, every access holds it, and the struct is handed to
// the worker with a sharing cast.
const fixed = `
struct cell {
	mutex *m;
	int locked(m) v[2];
};

void *worker(void *d) {
	struct cell *c = d;
	mutexLock(c->m);
	c->v[0] = 41;
	c->v[1] = c->v[1] + 1;
	mutexUnlock(c->m);
	return NULL;
}

int main(void) {
	struct cell *c = malloc(sizeof(struct cell));
	c->m = mutexNew();
	mutexLock(c->m);
	c->v[0] = 0;
	c->v[1] = 0;
	mutexUnlock(c->m);
	struct cell dynamic *cd = SCAST(struct cell dynamic *, c);
	int h = spawn(worker, cd);
	sleepMs(20);
	mutexLock(cd->m);
	cd->v[0] = cd->v[0] + 1;
	mutexUnlock(cd->m);
	join(h);
	return 7;
}
`

func build(src string) *sharc.Program {
	a, err := sharc.Check(sharc.Source{Name: "handoff.shc", Text: src})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !a.OK() {
		for _, e := range a.Errors() {
			fmt.Fprintln(os.Stderr, "error:", e)
		}
		os.Exit(1)
	}
	p, err := a.Build(sharc.DefaultOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return p
}

func reportText(res *sharc.Result) string {
	out := ""
	for _, r := range res.Reports {
		out += r.Msg + "\n"
	}
	return out
}

func main() {
	fmt.Println("=== 1. A free run misses the race ===")
	p := build(racy)
	free, err := p.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("free-running execution: %d conflict report(s) (the sleep keeps the\n"+
		"threads' lifetimes apart, so the shadow sets never overlap)\n", len(free.Races()))

	fmt.Println()
	fmt.Println("=== 2. Record: sweep seeds under the deterministic scheduler ===")
	const maxSeed = 100
	for seed := int64(0); seed < maxSeed; seed++ {
		res, tr, err := p.RunRecorded(seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(res.Races()) > 0 {
			recorded := res
			fmt.Printf("seed %d interleaves the lifetimes (%d decisions recorded):\n",
				seed, tr.Decisions)
			fmt.Print(reportText(res))

			fmt.Println()
			fmt.Println("=== 3. Replay: the trace reproduces the race every time ===")
			rep1, div1, err := p.RunReplay(tr)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rep2, div2, err := p.RunReplay(tr)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if div1 || div2 {
				fmt.Fprintln(os.Stderr, "unexpected divergence replaying on the recording program")
				os.Exit(1)
			}
			if reportText(rep1) != reportText(recorded) || reportText(rep2) != reportText(recorded) {
				fmt.Fprintln(os.Stderr, "replay did not reproduce the recorded reports")
				os.Exit(1)
			}
			fmt.Println("two replays, byte-identical reports — the heisenbug is now a test case")

			fmt.Println()
			fmt.Println("=== 4. Fix the annotation and re-check the schedule space ===")
			pf := build(fixed)
			// The recorded trace belongs to the unfixed program; the fix adds
			// lock operations, so the decision sequences no longer align and
			// replay falls back deterministically. The meaningful check is the
			// sweep: no seed in the range that exposed the bug reports anything.
			clean := true
			for s := int64(0); s < maxSeed; s++ {
				resF, err := pf.RunSeeded(s)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if len(resF.Reports) > 0 {
					clean = false
					fmt.Printf("seed %d still reports:\n%s", s, reportText(resF))
				}
			}
			if clean {
				fmt.Printf("locked(m) + mutex: all %d seeds run clean, exit value unchanged\n", maxSeed)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "no seed in 0..%d exposed the race\n", maxSeed)
	os.Exit(1)
}
