// Racedetect: using the reader/writer-set shadow memory (§4.2.1) directly
// from Go as a standalone dynamic race detector, the way SharC's runtime
// uses it. Three goroutines access a shared region; properly handed-off
// accesses stay silent, a deliberate unsynchronized write produces a
// conflict report in the paper's format.
package main

import (
	"fmt"
	"sync"

	"repro/internal/shadow"
	"repro/internal/token"
)

func main() {
	s := shadow.New(1 << 16)
	site := func(lv string, line int) uint32 {
		return s.InternSite(shadow.Site{
			LValue: lv,
			Pos:    token.Pos{File: "demo.c", Line: line, Col: 1},
		})
	}

	// Phase 1: thread 1 owns a buffer and fills it.
	wr1 := site("buf[i]", 10)
	for cell := int64(0); cell < 64; cell++ {
		if c := s.ChkWrite(1, cell, wr1); c != nil {
			fmt.Println(c.Error())
		}
	}
	fmt.Println("phase 1: thread 1 filled the buffer, no conflicts")

	// Phase 2: ownership handoff — the sharing cast clears the sets, and
	// thread 2 becomes the sole accessor.
	s.ClearRange(0, 64)
	rd2 := site("buf[i]", 22)
	clean := true
	for cell := int64(0); cell < 64; cell++ {
		if c := s.ChkRead(2, cell, rd2); c != nil {
			fmt.Println(c.Error())
			clean = false
		}
	}
	if clean {
		fmt.Println("phase 2: handoff to thread 2 (sets cleared), no conflicts")
	}

	// Phase 3: thread 3 races with thread 2 on the same granule.
	var wg sync.WaitGroup
	conflicts := make(chan *shadow.Conflict, 4)
	wr3 := site("buf[0]", 31)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if c := s.ChkWrite(3, 0, wr3); c != nil {
			conflicts <- c
		}
	}()
	wg.Wait()
	close(conflicts)
	fmt.Println("phase 3: thread 3 writes while thread 2 is a reader:")
	for c := range conflicts {
		fmt.Println(c.Error())
	}

	// Thread exit clears a thread's bits: sequential reuse is no race.
	s.ClearThread(2)
	s.ClearThread(3)
	wr4 := site("buf[0]", 44)
	if c := s.ChkWrite(4, 0, wr4); c == nil {
		fmt.Println("phase 4: after both threads exited, thread 4 owns the granule")
	}
}
