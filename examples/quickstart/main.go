// Quickstart: the paper's §2.1 walkthrough on the Figure-1 pipeline.
//
// Step 1 runs the pipeline WITHOUT sharing annotations: SharC compiles it
// as is, assumes all sharing it sees is an error, and produces runtime
// conflict reports in the paper's format. Step 2 adds one annotation (the
// private argument of the processing function): type checking now fails at
// the handoffs and SharC suggests the sharing casts. Step 3 runs the fully
// annotated pipeline cleanly and prints the inferred annotations (the
// Figure-2 view).
package main

import (
	"fmt"
	"os"
	"strings"

	"repro"
)

// unannotated is Figure 1 exactly as a programmer would first write it: no
// sharing modes, no casts.
const unannotated = `
typedef struct stage {
	struct stage *next;
	cond *cv;
	mutex *mut;
	char *sdata;
	void (*fun)(char *fdata);
} stage_t;

int notDone;

void procA(char *fdata) { fdata[0] = fdata[0] + 1; }

void *thrFunc(void *d) {
	stage_t *S = d;
	char *ldata;
	while (notDone) {
		mutexLock(S->mut);
		while (S->sdata == NULL)
			condWait(S->cv, S->mut);
		ldata = S->sdata;
		S->sdata = NULL;
		notDone = 0;
		condSignal(S->cv);
		mutexUnlock(S->mut);
		S->fun(ldata);
		free(ldata);
	}
	return NULL;
}

int main(void) {
	stage_t *st = malloc(sizeof(stage_t));
	st->next = NULL;
	st->cv = condNew();
	st->mut = mutexNew();
	st->sdata = NULL;
	st->fun = procA;
	notDone = 1;
	int t1 = spawn(thrFunc, st);
	char *buf = malloc(64);
	mutexLock(st->mut);
	st->sdata = buf;
	condSignal(st->cv);
	mutexUnlock(st->mut);
	join(t1);
	return 0;
}
`

// annotated is the same pipeline with the sharing strategy declared: the
// sdata field is locked, ownership moves with sharing casts, and the
// end-of-stream flag is intentionally racy.
const annotated = `
typedef struct stage {
	struct stage *next;
	cond *cv;
	mutex *mut;
	char locked(mut) *locked(mut) sdata;
	void (*fun)(char private *fdata);
} stage_t;

int racy notDone;

void procA(char private *fdata) { fdata[0] = fdata[0] + 1; }

void *thrFunc(void *d) {
	stage_t *S = d;
	char *ldata;
	while (notDone) {
		mutexLock(S->mut);
		while (S->sdata == NULL)
			condWait(S->cv, S->mut);
		ldata = SCAST(char private *, S->sdata);
		S->sdata = NULL;
		notDone = 0;
		condSignal(S->cv);
		mutexUnlock(S->mut);
		S->fun(ldata);
		free(ldata);
		ldata = NULL;
	}
	return NULL;
}

int main(void) {
	stage_t *st = malloc(sizeof(stage_t));
	st->next = NULL;
	st->cv = condNew();
	st->mut = mutexNew();
	mutexLock(st->mut);
	st->sdata = NULL;
	mutexUnlock(st->mut);
	st->fun = procA;
	notDone = 1;
	stage_t dynamic *std = SCAST(stage_t dynamic *, st);
	int t1 = spawn(thrFunc, std);
	char *buf = malloc(64);
	mutexLock(std->mut);
	std->sdata = SCAST(char locked(std->mut) *, buf);
	condSignal(std->cv);
	mutexUnlock(std->mut);
	join(t1);
	return 0;
}
`

func main() {
	fmt.Println("=== 1. Running the unannotated pipeline ===")
	fmt.Println("(SharC compiles it as is and reports the sharing it sees)")
	res0, err := sharc.Run(unannotated, sharc.DefaultOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, r := range res0.Reports {
		fmt.Println(r.Msg)
	}
	if len(res0.Reports) == 0 {
		fmt.Println("(this schedule produced no overlapping accesses; re-run to see reports)")
	}

	fmt.Println()
	fmt.Println("=== 2. Adding 'private' to the processing function ===")
	fmt.Println("(type checking now fails at the handoffs; SharC suggests the casts)")
	partial := strings.Replace(unannotated,
		"void procA(char *fdata)", "void procA(char private *fdata)", 1)
	partial = strings.Replace(partial,
		"void (*fun)(char *fdata);", "void (*fun)(char private *fdata);", 1)
	ap, err := sharc.Check(sharc.Source{Name: "pipeline.shc", Text: partial})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, e := range ap.Errors() {
		fmt.Println("error:", e)
	}
	for _, s := range ap.Suggestions() {
		fmt.Println("suggestion:", s)
	}

	fmt.Println()
	fmt.Println("=== 3. Running the annotated pipeline ===")
	res, err := sharc.Run(annotated, sharc.DefaultOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(res.Reports) == 0 {
		fmt.Println("clean: no conflicts, no lock violations, no failed casts")
	}
	for _, r := range res.Reports {
		fmt.Println(r.Msg)
	}
	fmt.Printf("accesses=%d checked=%d (%.1f%% dynamic)\n",
		res.Stats.TotalAccesses, res.Stats.DynamicAccesses,
		100*float64(res.Stats.DynamicAccesses)/float64(max(res.Stats.TotalAccesses, 1)))

	fmt.Println()
	fmt.Println("=== 4. Inferred annotations (the Figure-2 view) ===")
	a2, err := sharc.Check(sharc.Source{Name: "pipeline.shc", Text: annotated})
	if err != nil || !a2.OK() {
		fmt.Fprintln(os.Stderr, "annotated pipeline should check cleanly")
		os.Exit(1)
	}
	fmt.Print(a2.InferredAnnotations())
}

func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
