// Pfscan: a parallel file scanner in ShC (the paper's first benchmark
// shape), driven through the public API. One producer enumerates work, two
// scanner threads drain a locked queue and search a read-shared corpus;
// matches are tallied under the queue lock. The program is run twice —
// uninstrumented ("Orig") and fully instrumented — and the overhead and
// access statistics are printed, a one-row miniature of Table 1.
package main

import (
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/bench"
)

func main() {
	src := bench.PfscanSource(bench.Quick)

	a, err := sharc.Check(sharc.Source{Name: "pfscan.shc", Text: src})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !a.OK() {
		for _, e := range a.Errors() {
			fmt.Fprintln(os.Stderr, "error:", e)
		}
		os.Exit(1)
	}

	// Best of three runs per configuration, like the benchmark harness.
	run := func(opts sharc.Options) (*sharc.Result, time.Duration) {
		p, err := a.Build(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var best time.Duration
		var res *sharc.Result
		for i := 0; i < 3; i++ {
			start := time.Now()
			r, err := p.Run()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
				res = r
			}
		}
		return res, best
	}

	resOrig, dOrig := run(sharc.Options{})
	resSharc, dSharc := run(sharc.DefaultOptions())

	fmt.Printf("matches found:      %d (both builds agree: %v)\n",
		resSharc.Exit, resOrig.Exit == resSharc.Exit)
	fmt.Printf("orig runtime:       %v\n", dOrig.Round(time.Microsecond))
	fmt.Printf("sharc runtime:      %v\n", dSharc.Round(time.Microsecond))
	if dOrig > 0 {
		fmt.Printf("overhead:           %.1f%%\n", 100*float64(dSharc-dOrig)/float64(dOrig))
	}
	st := resSharc.Stats
	fmt.Printf("memory accesses:    %d (%.1f%% dynamically checked)\n",
		st.TotalAccesses, 100*float64(st.DynamicAccesses)/float64(st.TotalAccesses))
	fmt.Printf("lock checks:        %d\n", st.LockChecks)
	fmt.Printf("rc barriers:        %d (collections: %d)\n", st.Barriers, st.Collections)
	fmt.Printf("violations:         %d\n", len(resSharc.Reports))
	for _, r := range resSharc.Reports {
		fmt.Println(" ", r.Msg)
	}
}
