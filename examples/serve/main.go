// Serve: the checked-execution service end to end, in process.
//
// A long-lived server owns a compiled-program cache: the first request for
// a program pays the analyze+compile cost (a cache miss), every later one
// reuses the frozen flat IR (a hit), and because seeded runs are fully
// deterministic the reply bodies are byte-identical either way. The
// walkthrough starts a server, demonstrates the hit/miss equivalence,
// names a cached program by handle, shows a racy program's reports coming
// back in the reply JSON, provokes an admission refusal, reads the
// aggregated telemetry from /stats, and drains the server gracefully.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/serve"
)

const counter = `
int main(void) {
	int *p = malloc(sizeof(int));
	*p = 0;
	for (int i = 0; i < 5000; i++) {
		*p = *p + 1;
	}
	print("count=");
	printInt(*p);
	return 0;
}
`

const racer = `
int racy *cell;

void *worker(void *d) {
	for (int i = 0; i < 50; i++) {
		cell[0] = cell[0] + 1;
	}
	return NULL;
}

int main(void) {
	cell = malloc(sizeof(int));
	cell[0] = 0;
	int h1 = spawn(worker, NULL);
	int h2 = spawn(worker, NULL);
	join(h1);
	join(h2);
	return 0;
}
`

func post(base, path string, body any) (int, string, []byte) {
	buf, err := json.Marshal(body)
	if err != nil {
		fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Sharc-Cache"), data
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	cfg := serve.DefaultConfig()
	cfg.Addr = "127.0.0.1:0"
	cfg.MaxSessions = 2
	cfg.QueueDepth = 0 // no waiting room: over-capacity requests are refused
	srv := serve.New(cfg)
	if err := srv.Listen(); err != nil {
		fatal(err)
	}
	go srv.Serve()
	base := "http://" + srv.Addr()
	fmt.Printf("=== 1. Server up at %s ===\n", srv.Addr())

	fmt.Println()
	fmt.Println("=== 2. Cache miss, then hit — byte-identical replies ===")
	req := map[string]any{"source": counter, "name": "counter.shc", "seed": 3}
	_, c1, b1 := post(base, "/run", req)
	_, c2, b2 := post(base, "/run", req)
	fmt.Printf("first request:  X-Sharc-Cache: %s\n", c1)
	fmt.Printf("second request: X-Sharc-Cache: %s\n", c2)
	fmt.Printf("bodies identical: %v\n", bytes.Equal(b1, b2))
	fmt.Printf("reply: %s", b1)

	fmt.Println()
	fmt.Println("=== 3. Compile once, run by handle ===")
	st, _, ch := post(base, "/compile", map[string]any{"source": racer, "name": "racer.shc"})
	if st != http.StatusOK {
		fatal(fmt.Errorf("compile: %d %s", st, ch))
	}
	var compiled struct {
		Handle string `json:"handle"`
	}
	if err := json.Unmarshal(ch, &compiled); err != nil {
		fatal(err)
	}
	fmt.Printf("handle: %s\n", compiled.Handle)
	_, cache, rb := post(base, "/run", map[string]any{"handle": compiled.Handle, "seed": 1})
	fmt.Printf("run by handle (cache %s):\n", cache)
	var racerReply struct {
		Exit    int64 `json:"exit"`
		Reports []struct {
			Kind string `json:"kind"`
			Pos  string `json:"pos"`
			Msg  string `json:"msg"`
		} `json:"reports"`
	}
	if err := json.Unmarshal(rb, &racerReply); err != nil {
		fatal(err)
	}
	fmt.Printf("exit %d, %d deterministic report(s); first:\n", racerReply.Exit, len(racerReply.Reports))
	if len(racerReply.Reports) > 0 {
		fmt.Printf("  %s\n", racerReply.Reports[0].Msg)
	}

	fmt.Println()
	fmt.Println("=== 4. Admission control: 2 sessions, no queue ===")
	slow := strings.Replace(counter, "5000", "30000000", 1)
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			st, _, _ := post(base, "/run", map[string]any{
				"source": slow, "name": "slow.shc", "timeout_ms": 1500,
			})
			done <- st
		}()
	}
	time.Sleep(300 * time.Millisecond) // let both occupy the slots
	st, _, body := post(base, "/run", req)
	fmt.Printf("third concurrent request: %d %s", st, body)
	<-done
	<-done

	fmt.Println()
	fmt.Println("=== 5. Aggregated telemetry from /stats ===")
	resp, err := http.Get(base + "/stats")
	if err != nil {
		fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var pretty bytes.Buffer
	json.Indent(&pretty, stats, "", "  ")
	fmt.Println(pretty.String())

	fmt.Println("=== 6. Graceful drain ===")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal(err)
	}
	fmt.Println("drained: in-flight sessions finished, listener closed")
}
