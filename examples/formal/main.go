// Formal: driving the executable §3 model directly. The program builds the
// ownership-handoff example in the core two-mode language, compiles it
// (inserting the chkread/chkwrite/oneref guards of Figure 4), prints the
// guarded statements, runs a few hundred random interleavings asserting
// the soundness oracle, and then demonstrates mutation testing: with the
// guards stripped, a racy variant produces oracle violations.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/semantics"
)

func handoff() *semantics.Program {
	return &semantics.Program{
		Main: "main",
		Globals: []semantics.Decl{
			{Name: "box", Type: semantics.RefTo(semantics.Dynamic, semantics.Int(semantics.Dynamic))},
		},
		Threads: []semantics.ThreadDef{
			{
				Name: "main",
				Locals: []semantics.Decl{
					{Name: "p", Type: semantics.RefTo(semantics.Private, semantics.Int(semantics.Dynamic))},
				},
				Body: []semantics.Stmt{
					{Kind: semantics.StmtAssign, L: semantics.LVal{Name: "p"},
						R: semantics.RHS{Kind: semantics.RHSNew, T: semantics.Int(semantics.Dynamic)}},
					{Kind: semantics.StmtAssign, L: semantics.LVal{Name: "p", Deref: true},
						R: semantics.RHS{Kind: semantics.RHSInt, N: 7}},
					{Kind: semantics.StmtAssign, L: semantics.LVal{Name: "box"},
						R: semantics.RHS{Kind: semantics.RHSLVal, L: semantics.LVal{Name: "p"}}},
					{Kind: semantics.StmtSpawn, Thread: "worker"},
				},
			},
			{
				Name: "worker",
				Locals: []semantics.Decl{
					{Name: "q", Type: semantics.RefTo(semantics.Private, semantics.Int(semantics.Dynamic))},
					{Name: "mine", Type: semantics.RefTo(semantics.Private, semantics.Int(semantics.Private))},
				},
				Body: []semantics.Stmt{
					{Kind: semantics.StmtAssign, L: semantics.LVal{Name: "q"},
						R: semantics.RHS{Kind: semantics.RHSLVal, L: semantics.LVal{Name: "box"}}},
					{Kind: semantics.StmtAssign, L: semantics.LVal{Name: "box"},
						R: semantics.RHS{Kind: semantics.RHSNull}},
					{Kind: semantics.StmtAssign, L: semantics.LVal{Name: "mine"},
						R: semantics.RHS{Kind: semantics.RHSScast, X: "q", T: semantics.Int(semantics.Private)}},
					{Kind: semantics.StmtAssign, L: semantics.LVal{Name: "mine", Deref: true},
						R: semantics.RHS{Kind: semantics.RHSInt, N: 9}},
				},
			},
		},
	}
}

func racy() *semantics.Program {
	w := semantics.ThreadDef{
		Name: "w",
		Body: []semantics.Stmt{
			{Kind: semantics.StmtAssign, L: semantics.LVal{Name: "g"},
				R: semantics.RHS{Kind: semantics.RHSInt, N: 1}},
			{Kind: semantics.StmtAssign, L: semantics.LVal{Name: "g"},
				R: semantics.RHS{Kind: semantics.RHSInt, N: 2}},
		},
	}
	return &semantics.Program{
		Main:    "main",
		Globals: []semantics.Decl{{Name: "g", Type: semantics.Int(semantics.Dynamic)}},
		Threads: []semantics.ThreadDef{
			{Name: "main", Body: []semantics.Stmt{
				{Kind: semantics.StmtSpawn, Thread: "w"},
				{Kind: semantics.StmtSpawn, Thread: "w"},
			}},
			w,
		},
	}
}

func main() {
	fmt.Println("=== Figure 4: typing inserts runtime guards ===")
	compiled, err := semantics.Compile(handoff())
	if err != nil {
		panic(err)
	}
	for _, td := range compiled.Threads {
		fmt.Printf("%s():\n", td.Name)
		for _, s := range td.Body {
			fmt.Printf("  %s\n", s)
		}
	}

	fmt.Println()
	fmt.Println("=== Soundness: 500 random schedules, oracle silent ===")
	rng := rand.New(rand.NewSource(1))
	violations := 0
	for i := 0; i < 500; i++ {
		m := semantics.NewMachine(compiled)
		m.Run(rng, 2000)
		violations += len(m.Violations)
	}
	fmt.Printf("violations with guards: %d\n", violations)

	fmt.Println()
	fmt.Println("=== Mutation: guards stripped from a racy program ===")
	rc, err := semantics.Compile(racy())
	if err != nil {
		panic(err)
	}
	guarded, unguarded := 0, 0
	for i := 0; i < 500; i++ {
		m := semantics.NewMachine(rc)
		m.Run(rng, 2000)
		guarded += len(m.Violations)
		m2 := semantics.NewMachine(rc)
		m2.GuardsOff = true
		m2.Run(rng, 2000)
		unguarded += len(m2.Violations)
	}
	fmt.Printf("violations with guards:    %d (threads fail their checks instead)\n", guarded)
	fmt.Printf("violations without guards: %d (the checks are load-bearing)\n", unguarded)
}
