// Refcount: using the Levanoni–Petrank concurrent reference-counting
// substrate (§4.3) directly from Go. Four mutator goroutines hammer
// pointer slots through the write barrier while a collector thread runs
// concurrent counting cycles; the final counts are exact. The same
// workload is repeated with the naive atomic scheme to show both managers
// agree — the benchmark suite measures how much slower the naive barriers
// are.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/refcount"
)

// mem is a toy flat memory: slots hold "pointers" (cell addresses).
type mem struct {
	cells []atomic.Int64
}

func (m *mem) LoadCell(addr int64) int64 { return m.cells[addr].Load() }

func (m *mem) store(mgr refcount.Manager, tid int, slot, val int64) {
	old := m.cells[slot].Load()
	mgr.Barrier(tid, slot, old, val)
	m.cells[slot].Store(val)
}

// Objects are 16-cell blocks between 16 and 4096.
func resolve(ptr int64) int64 {
	if ptr < 16 || ptr >= 4096 {
		return 0
	}
	return ptr &^ 15
}

func workload(mgr refcount.Manager, m *mem) {
	var wg sync.WaitGroup
	for tid := 1; tid <= 4; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			obj := int64(16 * tid)
			// Each thread points 64 slots at its object, then retargets
			// half of them at the neighbour's object.
			for i := 0; i < 64; i++ {
				slot := int64(1000 + tid*128 + i)
				m.store(mgr, tid, slot, obj)
			}
			neighbour := int64(16*(tid%4) + 16)
			for i := 0; i < 32; i++ {
				slot := int64(1000 + tid*128 + i)
				m.store(mgr, tid, slot, neighbour)
			}
		}(tid)
	}
	wg.Wait()
}

func main() {
	m1 := &mem{cells: make([]atomic.Int64, 4096)}
	lp := refcount.NewLP(4096, resolve)
	lp.SetMemory(m1)
	workload(lp, m1)

	m2 := &mem{cells: make([]atomic.Int64, 4096)}
	naive := refcount.NewNaive(resolve)
	workload(naive, m2)

	fmt.Println("object   LP-count  naive-count")
	for tid := 1; tid <= 4; tid++ {
		obj := int64(16 * tid)
		fmt.Printf("0x%03x    %8d  %11d\n", obj, lp.Count(0, obj), naive.Count(0, obj))
	}
	fmt.Printf("LP collection cycles: %d\n", lp.Collections())

	// The oneref idiom of Figure 7: null the slot, then ask for the count.
	// The target block at 0x200 is referenced only by this slot.
	slot := int64(3000)
	target := int64(512)
	m1.store(lp, 1, slot, target)
	m1.store(lp, 1, slot, 0)
	if n := lp.Count(1, target); n > 1 {
		fmt.Printf("oneref would FAIL: %d references remain\n", n)
	} else {
		fmt.Printf("oneref would pass: %d references remain\n", n)
	}
}
