// Package sharc is a Go reproduction of SharC, the data-sharing checker
// for multithreaded C of Anderson, Gay, Ennals and Brewer (PLDI 2008).
//
// SharC lets a programmer annotate the types of a C-like program (the ShC
// dialect implemented here) with five sharing modes — private, readonly,
// locked(l), racy, and dynamic — and verifies, with a mix of static
// analysis and runtime instrumentation, that every access conforms:
//
//   - a whole-program qualifier inference (§4.1 of the paper) decides
//     private-vs-dynamic for every unannotated type, seeded by thread
//     arguments and thread-touched globals;
//   - a static checker enforces the typing judgments (assignments and calls
//     preserve referent modes, readonly is written only while private,
//     sharing casts change exactly one mode level) and suggests SCAST
//     insertions where only a top referent mode mismatches;
//   - the runtime tracks reader/writer sets in shadow memory for dynamic
//     data, held locks for locked data, and reference counts (an adapted
//     Levanoni–Petrank concurrent scheme) so sharing casts can verify
//     their source is the sole reference.
//
// The package is a facade over the internal pipeline: Check analyzes
// sources, Build compiles them with selectable instrumentation, and Run
// executes them on the concurrent interpreter, returning the violation
// reports in the paper's format.
package sharc

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/check"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/parser"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/types"
	"repro/internal/vet"
)

// Source is one named ShC source text.
type Source = parser.Source

// Options selects analysis and instrumentation behavior.
type Options struct {
	// Checks enables the dynamic/locked runtime checks (default true via
	// DefaultOptions).
	Checks bool
	// RefCounting enables write barriers and the oneref check on sharing
	// casts.
	RefCounting bool
	// RCSiteAnalysis restricts barriers to pointers that may reach a
	// sharing cast (§4.3's optimization).
	RCSiteAnalysis bool
	// NaiveRC replaces the Levanoni–Petrank scheme with per-write atomic
	// counting (the scheme the paper measured at >60% overhead).
	NaiveRC bool
	// ElideChecks runs the static redundant-check-elision pass after
	// lowering (compile layer of check elision).
	ElideChecks bool
	// StaticDischarge runs the whole-program vet analysis (points-to +
	// locksets, internal/vet) at build time and compiles its safe verdicts
	// as already-elided checks: must-held locksets discharge locked checks
	// across calls and single-thread heap objects discharge dynamic
	// checks. Counted in Elision().DischargedDynamic/DischargedLocked.
	StaticDischarge bool
	// CheckCache enables the per-thread granule check cache in the shadow
	// runtime (runtime layer of check elision).
	CheckCache bool
	// Stdout receives program output (io.Discard if nil).
	Stdout io.Writer
	// Observer taps accesses and synchronization for external detectors.
	Observer interp.Observer
	// Metrics enables per-site telemetry collection; the aggregated
	// snapshot appears on Result.Telemetry.
	Metrics bool
	// TraceEvents, when positive, enables structured event tracing with a
	// ring buffer of that many events (Result.Trace).
	TraceEvents int
	// Engine selects the execution engine: "" or "auto" runs the register
	// VM over the flat instruction form (the default), "vm" forces it, and
	// "tree" keeps the recursive tree walker (retained behind this option
	// for one release). Both engines produce byte-identical reports, stats,
	// telemetry, and schedule traces.
	Engine string
}

// DefaultOptions enables full instrumentation.
func DefaultOptions() Options {
	return Options{Checks: true, RefCounting: true, RCSiteAnalysis: true}
}

// Analysis is the result of static analysis: errors, warnings, and sharing
// cast suggestions, plus access to the resolved world for inspection.
type Analysis struct {
	inner *core.Analysis
}

// Check parses and analyzes the sources.
func Check(sources ...Source) (*Analysis, error) {
	a, err := core.Analyze(sources...)
	if err != nil {
		return nil, err
	}
	return &Analysis{inner: a}, nil
}

// OK reports whether the program passed all static checks.
func (a *Analysis) OK() bool { return a.inner.Check.OK() }

// Errors returns the static errors, formatted with positions.
func (a *Analysis) Errors() []string {
	var out []string
	for _, e := range a.inner.Check.Errors {
		out = append(out, e.Error())
	}
	return out
}

// Warnings returns the warnings (e.g. SCAST sources live after the cast).
func (a *Analysis) Warnings() []string {
	var out []string
	for _, w := range a.inner.Check.Warnings {
		out = append(out, w.Error())
	}
	return out
}

// Suggestions returns the sharing-cast suggestions in source form.
func (a *Analysis) Suggestions() []string {
	var out []string
	for _, s := range a.inner.Check.Suggestions {
		out = append(out, s.String())
	}
	return out
}

// RawSuggestions exposes the structured suggestions.
func (a *Analysis) RawSuggestions() []check.Suggestion {
	return a.inner.Check.Suggestions
}

// InferredAnnotations renders the sharing modes inference selected for
// every struct field, global, function signature, and local — the view
// Figure 2 of the paper shows for the pipeline example.
func (a *Analysis) InferredAnnotations() string {
	w := a.inner.World
	s := a.inner.Inf.Subst
	var sb strings.Builder

	resolve := func(t *types.Type) string {
		return renderResolved(s, t)
	}

	var structNames []string
	for name := range w.Structs {
		structNames = append(structNames, name)
	}
	sort.Strings(structNames)
	for _, name := range structNames {
		si := w.Structs[name]
		if si.Decl != nil && si.Decl.P.File == "<prelude>" {
			continue
		}
		fmt.Fprintf(&sb, "struct %s(q) {\n", name)
		for _, f := range si.Fields {
			fmt.Fprintf(&sb, "\t%s %s;\n", resolve(f.Type), f.Name)
		}
		sb.WriteString("};\n")
	}

	var globalNames []string
	for name := range w.Globals {
		globalNames = append(globalNames, name)
	}
	sort.Strings(globalNames)
	for _, name := range globalNames {
		fmt.Fprintf(&sb, "%s %s;\n", resolve(w.Globals[name].Type), name)
	}

	var funcNames []string
	for name := range w.Funcs {
		funcNames = append(funcNames, name)
	}
	sort.Strings(funcNames)
	for _, name := range funcNames {
		fi := w.Funcs[name]
		if fi.Decl.Body == nil {
			continue
		}
		fmt.Fprintf(&sb, "%s %s(", resolve(fi.Ret), name)
		for i, p := range fi.Params {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s %s", resolve(p.Type), p.Name)
		}
		sb.WriteString(")\n")
		// Locals in declaration order (by position).
		type loc struct {
			line, col int
			text      string
		}
		var locs []loc
		for d, lt := range fi.Locals {
			locs = append(locs, loc{d.P.Line, d.P.Col, fmt.Sprintf("\t%s %s;", resolve(lt), d.Name)})
		}
		sort.Slice(locs, func(i, j int) bool {
			if locs[i].line != locs[j].line {
				return locs[i].line < locs[j].line
			}
			return locs[i].col < locs[j].col
		})
		for _, l := range locs {
			sb.WriteString(l.text)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// renderResolved renders a type with inference variables substituted.
func renderResolved(s types.Subst, t *types.Type) string {
	if t == nil {
		return "<nil>"
	}
	c := t.Clone()
	var walk func(*types.Type)
	walk = func(x *types.Type) {
		if x == nil {
			return
		}
		x.Mode = s.Apply(x.Mode)
		walk(x.Elem)
		walk(x.Ret)
		for _, p := range x.Params {
			walk(p)
		}
	}
	walk(c)
	return c.String()
}

// Program is a compiled, instrumented ShC program ready to run.
type Program struct {
	ir   *ir.Program
	opts Options
}

// Build compiles the analyzed program with the given instrumentation.
func (a *Analysis) Build(opts Options) (*Program, error) {
	if _, err := parseEngine(opts.Engine); err != nil {
		return nil, err
	}
	copts := compile.Options{
		Checks:         opts.Checks,
		Elide:          opts.ElideChecks,
		RC:             opts.RefCounting,
		RCSiteAnalysis: opts.RCSiteAnalysis,
	}
	if opts.StaticDischarge && opts.Checks {
		copts.Discharge = a.Vet().Discharge()
	}
	p, err := a.inner.Build(copts)
	if err != nil {
		return nil, err
	}
	return &Program{ir: p, opts: opts}, nil
}

// VetReport is the result of the whole-program static vet analysis; see
// internal/vet.
type VetReport = vet.Report

// Vet runs the points-to + lockset static analysis over the checked
// program: ranked must/may findings plus the check-discharge set.
func (a *Analysis) Vet() *VetReport {
	return vet.Analyze(a.inner.World, a.inner.Inf)
}

// Elision returns the static check-elision counts (zero unless the program
// was built with ElideChecks).
func (p *Program) Elision() ir.ElisionStats { return p.ir.Elision }

// Result is the outcome of executing a program.
type Result struct {
	Exit    int64
	Reports []interp.Report
	Stats   interp.Stats
	// Deadlock is set when the cooperative scheduler found all threads
	// blocked (only possible under seeded/replayed runs; a free run hangs
	// instead).
	Deadlock bool
	// Telemetry holds the per-site metrics snapshot (nil unless the
	// program ran with Options.Metrics).
	Telemetry *telemetry.Snapshot
	// Trace is the structured event stream (nil unless Options.TraceEvents
	// was positive).
	Trace *telemetry.Tracer
	// Engine names the execution engine the run resolved to ("vm" or
	// "tree").
	Engine string
}

// Races returns the conflict reports (the paper's read/write conflict
// format).
func (r *Result) Races() []interp.Report {
	return filterReports(r.Reports, interp.ReportRace)
}

// LockViolations returns reports of locked-mode accesses without the lock.
func (r *Result) LockViolations() []interp.Report {
	return filterReports(r.Reports, interp.ReportLock)
}

// OneRefFailures returns sharing casts whose source was not the sole
// reference.
func (r *Result) OneRefFailures() []interp.Report {
	return filterReports(r.Reports, interp.ReportOneRef)
}

func filterReports(rs []interp.Report, k interp.ReportKind) []interp.Report {
	var out []interp.Report
	for _, r := range rs {
		if r.Kind == k {
			out = append(out, r)
		}
	}
	return out
}

// parseEngine maps the Options.Engine string onto the runtime's engine
// selector.
func parseEngine(s string) (interp.Engine, error) {
	switch s {
	case "", "auto":
		return interp.EngineAuto, nil
	case "vm":
		return interp.EngineVM, nil
	case "tree":
		return interp.EngineTree, nil
	}
	return interp.EngineAuto, fmt.Errorf("unknown engine %q (want auto, vm, or tree)", s)
}

// baseConfig translates the build options into a runtime configuration.
func (p *Program) baseConfig() interp.Config {
	cfg := interp.DefaultConfig()
	cfg.Engine, _ = parseEngine(p.opts.Engine)
	cfg.Stdout = p.opts.Stdout
	cfg.Observer = p.opts.Observer
	cfg.CheckCache = p.opts.CheckCache
	cfg.Metrics = p.opts.Metrics
	cfg.TraceCapacity = p.opts.TraceEvents
	if !p.opts.RefCounting {
		cfg.RC = interp.RCOff
	} else if p.opts.NaiveRC {
		cfg.RC = interp.RCNaive
	}
	return cfg
}

func (p *Program) runWith(ctl *sched.Controller) (*Result, error) {
	cfg := p.baseConfig()
	cfg.Sched = ctl
	rt := interp.New(p.ir, cfg)
	exit, err := rt.Run()
	res := &Result{
		Exit:      exit,
		Reports:   rt.Reports(),
		Stats:     rt.Stats(),
		Telemetry: rt.TelemetrySnapshot(),
		Trace:     rt.Tracer(),
		Engine:    rt.EngineUsed().String(),
	}
	if ctl != nil {
		res.Deadlock = ctl.Deadlocked()
	}
	return res, err
}

// Run executes the compiled program on the free-running Go scheduler.
func (p *Program) Run() (*Result, error) { return p.runWith(nil) }

// RunSeeded executes the program under the cooperative scheduler with a
// seeded uniform-random strategy: the same (program, seed) pair reproduces
// the identical execution, reports, and exit value.
func (p *Program) RunSeeded(seed int64) (*Result, error) {
	return p.runWith(sched.New(sched.NewRandom(seed), sched.Options{}))
}

// RunRecorded is RunSeeded plus schedule recording: the returned trace
// replays the execution exactly with RunReplay, including against a build
// of the same program with different elision options (the elision
// soundness oracle).
func (p *Program) RunRecorded(seed int64) (*Result, *sched.Trace, error) {
	ctl := sched.New(sched.NewRandom(seed), sched.Options{Record: true})
	res, err := p.runWith(ctl)
	return res, ctl.Trace(), err
}

// RunReplay re-executes a recorded schedule. diverged reports whether the
// trace failed to match the execution (replaying against a different
// program, or one whose instrumentation changed its scheduling points).
func (p *Program) RunReplay(tr *sched.Trace) (res *Result, diverged bool, err error) {
	ctl := sched.New(sched.NewReplay(tr), sched.Options{})
	res, err = p.runWith(ctl)
	return res, ctl.Diverged(), err
}

// ExploreOptions configures Explore; see interp.ExploreOptions.
type ExploreOptions = interp.ExploreOptions

// ExploreSummary is the coverage report of Explore.
type ExploreSummary = interp.ExploreSummary

// Explore runs the program under many controlled schedules and aggregates
// the distinct (site, kind) findings with the schedule that first exposed
// each one.
func (p *Program) Explore(opt ExploreOptions) *ExploreSummary {
	return interp.Explore(p.ir, p.baseConfig(), opt)
}

// ExploreSummaryJSON renders an exploration summary as indented JSON.
func ExploreSummaryJSON(sum *ExploreSummary) ([]byte, error) {
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Run is the one-call pipeline: check, build, execute. Static errors abort
// with a combined error.
func Run(src string, opts Options) (*Result, error) {
	a, err := Check(Source{Name: "program.shc", Text: src})
	if err != nil {
		return nil, err
	}
	if !a.OK() {
		return nil, fmt.Errorf("static checking failed: %s", a.Errors()[0])
	}
	p, err := a.Build(opts)
	if err != nil {
		return nil, err
	}
	return p.Run()
}
